package detect

import (
	"fmt"
	"sort"

	"repro/internal/baselines"
	"repro/internal/edivisive"
	"repro/internal/sst"
)

// Detector is the pluggable contract every change detector in the
// arena satisfies: a pointwise scorer (drivable by Gate, the
// persistence rule, and the sweep helpers) that also identifies itself
// for registry lookup and reporting. SST variants, the baselines and
// E-divisive all implement it; implementations that additionally
// satisfy sst.RangeScorer get the incremental sweep path for free.
type Detector interface {
	sst.Scorer
	// Name returns the registry identifier, e.g. "sst" or "cusum".
	Name() string
}

// Entry describes one registered detector for the arena: how to build
// its default configuration, how it relates to the funnel pipeline, and
// what its hot path costs.
type Entry struct {
	// Name is the registry identifier, accepted by funnel.Config.Detector
	// and the -detector flag.
	Name string
	// Summary is a one-line description for docs and flag help.
	Summary string
	// CausalStage reports whether the funnel pipeline pairs this
	// detector with a causality stage (DiD or Bayesian structural
	// time-series) by default. Score-only baselines (false) stop at the
	// persistence rule.
	CausalStage bool
	// ZeroAlloc reports whether the steady-state score path is
	// allocation-free (pinned by AllocsPerRun gates in the owning
	// package's tests).
	ZeroAlloc bool
	// New builds a default-configured instance.
	New func() Detector
}

// registry is the static arena. Construction stays explicit — no init
// side effects — so the dependency direction is detect → scorers and a
// reader can see the full roster in one place.
var registry = []Entry{
	{
		Name:        "sst",
		Summary:     "IKA-accelerated robust SST, the scorer FUNNEL deploys (§3.2.3)",
		CausalStage: true,
		ZeroAlloc:   true,
		New:         func() Detector { return sst.NewSliding(sst.NewIKA(sst.Config{})) },
	},
	{
		Name:        "sst-classic",
		Summary:     "original SVD-based SST (§3.2.1)",
		CausalStage: true,
		ZeroAlloc:   true,
		New:         func() Detector { return sst.NewClassic(sst.Config{}) },
	},
	{
		Name:        "sst-robust",
		Summary:     "robustness-improved SST with exact decompositions (§3.2.2)",
		CausalStage: true,
		ZeroAlloc:   true,
		New:         func() Detector { return sst.NewRobust(sst.Config{}) },
	},
	{
		Name:        "cusum",
		Summary:     "MERCURY-style bootstrap CUSUM baseline",
		CausalStage: false,
		ZeroAlloc:   false, // bootstrap RNG; bounded by an AllocsPerRun gate
		New:         func() Detector { return baselines.NewCUSUM() },
	},
	{
		Name:        "mrls",
		Summary:     "PRISM-style multiscale robust local subspace baseline",
		CausalStage: false,
		ZeroAlloc:   true,
		New:         func() Detector { return baselines.NewMRLS() },
	},
	{
		Name:        "wow",
		Summary:     "week-over-week differencing baseline (Chen et al. 2013)",
		CausalStage: false,
		ZeroAlloc:   false,
		New:         func() Detector { return baselines.NewWoW() },
	},
	{
		Name:        "edivisive",
		Summary:     "E-divisive means energy-statistic detector with permutation significance (Hunter)",
		CausalStage: false,
		ZeroAlloc:   false, // pooled, but the permutation RNG allocates
		New:         func() Detector { return edivisive.New() },
	},
}

// Detectors returns the registered entries sorted by name.
func Detectors() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupDetector resolves a registry name. It returns a descriptive
// error listing the roster on an unknown name.
func LookupDetector(name string) (Entry, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, len(registry))
	for _, e := range Detectors() {
		names = append(names, e.Name)
	}
	return Entry{}, fmt.Errorf("detect: unknown detector %q (registered: %v)", name, names)
}
