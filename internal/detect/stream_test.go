package detect

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sst"
	"repro/internal/topo"
)

func streamDetector() *Gate {
	d := New(sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true}), 1.5)
	d.MaxGap = 5
	return d
}

func TestStreamMatchesBatchDeclaration(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	c := 200
	x := genLevelShift(400, c, 8, 0.5, rng)

	det := streamDetector()
	batch := det.Detect(x)
	if len(batch) == 0 {
		t.Fatal("batch found nothing")
	}

	stream := NewStream(det)
	var decls []Declaration
	for _, v := range x {
		if d, ok := stream.Push(v); ok {
			decls = append(decls, d)
		}
	}
	if len(decls) == 0 {
		t.Fatal("stream found nothing")
	}
	if decls[0].Start != batch[0].Start {
		t.Fatalf("stream start %d != batch start %d", decls[0].Start, batch[0].Start)
	}
	// The stream's wall-clock At must equal the batch's AvailableAt:
	// both account for the scorer's future window.
	if decls[0].At != batch[0].AvailableAt {
		t.Fatalf("stream At %d != batch AvailableAt %d", decls[0].At, batch[0].AvailableAt)
	}
}

func TestStreamQuietSeriesSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	x := genLevelShift(500, 1<<30, 0, 0.5, rng)
	stream := NewStream(streamDetector())
	for i, v := range x {
		if d, ok := stream.Push(v); ok {
			t.Fatalf("false declaration at push %d: %+v", i, d)
		}
	}
	if stream.Len() != len(x) {
		t.Fatalf("Len = %d", stream.Len())
	}
}

func TestStreamDeclaresOncePerRun(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	x := genLevelShift(400, 200, 10, 0.3, rng)
	stream := NewStream(streamDetector())
	count := 0
	for _, v := range x {
		if _, ok := stream.Push(v); ok {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("declared %d times, want 1", count)
	}
}

func TestStreamShortWindowNoScore(t *testing.T) {
	stream := NewStream(streamDetector())
	w := streamDetector().Scorer.Config().WindowSize()
	for i := 0; i < w-1; i++ {
		if _, ok := stream.Push(1); ok {
			t.Fatal("declared before a full window existed")
		}
	}
}

// Steady-state pushes must not allocate: the window is a fixed-capacity
// buffer shifted in place, and the IKA scorer behind it is
// allocation-free. The old append-then-reslice window reallocated (and
// fully copied) on every push once the window was full.
func TestStreamPushZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts; alloc guarantee does not hold")
	}
	rng := rand.New(rand.NewSource(105))
	stream := NewStream(streamDetector())
	w := stream.cfg.WindowSize()
	// Warm past the full window on a quiet series so scoring engages
	// and the pooled scorer workspace is built.
	for i := 0; i < 4*w; i++ {
		stream.Push(20 + 0.3*rng.NormFloat64())
	}
	samples := make([]float64, 256)
	for i := range samples {
		samples[i] = 20 + 0.3*rng.NormFloat64()
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		stream.Push(samples[i%len(samples)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push allocs/op = %v, want 0", allocs)
	}
}

func TestStreamInRun(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	x := genLevelShift(400, 200, 10, 0.3, rng)
	stream := NewStream(streamDetector())
	sawRun := false
	for _, v := range x {
		stream.Push(v)
		if stream.InRun() {
			sawRun = true
		}
	}
	if !sawRun {
		t.Fatal("run state never opened")
	}
}

func TestFleetPerKeyIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	fleet := NewFleet(nil)
	shiftKey := kpiKey("srv-1")
	quietKey := kpiKey("srv-2")
	var declared []FleetDeclaration
	for i := 0; i < 400; i++ {
		shift := 0.0
		if i >= 200 {
			shift = 10
		}
		if d, ok := fleet.Push(shiftKey, 20+0.3*rng.NormFloat64()+shift); ok {
			declared = append(declared, d)
		}
		if d, ok := fleet.Push(quietKey, 20+0.3*rng.NormFloat64()); ok {
			declared = append(declared, d)
		}
	}
	if len(declared) != 1 || declared[0].Key != shiftKey {
		t.Fatalf("declarations = %+v", declared)
	}
	if fleet.Len() != 2 || len(fleet.Keys()) != 2 {
		t.Fatalf("fleet size = %d", fleet.Len())
	}
	fleet.Drop(quietKey)
	if fleet.Len() != 1 {
		t.Fatal("Drop did not remove the stream")
	}
}

func TestFleetConcurrentPushes(t *testing.T) {
	fleet := NewFleet(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			key := kpiKey(string(rune('a' + g)))
			for i := 0; i < 300; i++ {
				fleet.Push(key, rng.NormFloat64())
			}
		}(g)
	}
	wg.Wait()
	if fleet.Len() != 8 {
		t.Fatalf("fleet size = %d", fleet.Len())
	}
}

func kpiKey(entity string) topo.KPIKey {
	return topo.KPIKey{Scope: topo.ScopeServer, Entity: entity, Metric: "m"}
}
