//go:build !race

package detect

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
