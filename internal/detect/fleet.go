package detect

import (
	"sort"
	"sync"

	"repro/internal/sst"
	"repro/internal/topo"
)

// Fleet manages one online Stream per KPI key — the shape of FUNNEL's
// deployment, where millions of KPI streams are watched concurrently
// (§2.3). Streams are created lazily on first push; each key costs
// O(window) memory.
//
// Fleet is safe for concurrent use; pushes to distinct keys proceed in
// parallel, pushes to the same key serialize on that key's stream.
type Fleet struct {
	// newDetector builds the per-key detector (thresholds may differ by
	// KPI class in production; the factory decides).
	newDetector func(topo.KPIKey) *Gate

	mu      sync.Mutex
	streams map[topo.KPIKey]*fleetStream
}

// fleetStream serializes pushes per key.
type fleetStream struct {
	mu sync.Mutex
	s  *Stream
}

// FleetDeclaration pairs a declaration with the KPI it fired on.
type FleetDeclaration struct {
	Key topo.KPIKey
	Declaration
}

// NewFleet builds a fleet whose per-key detectors come from the
// factory. A nil factory uses the deployed defaults (IKA scorer,
// threshold 1.6, 7-bin persistence).
func NewFleet(factory func(topo.KPIKey) *Gate) *Fleet {
	if factory == nil {
		factory = func(topo.KPIKey) *Gate {
			d := New(sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true}), 1.6)
			d.MaxGap = 5
			return d
		}
	}
	return &Fleet{newDetector: factory, streams: make(map[topo.KPIKey]*fleetStream)}
}

// Push feeds one sample for key and reports a declaration if the
// persistence rule fired on this push.
func (f *Fleet) Push(key topo.KPIKey, v float64) (FleetDeclaration, bool) {
	f.mu.Lock()
	fs, ok := f.streams[key]
	if !ok {
		fs = &fleetStream{s: NewStream(f.newDetector(key))}
		f.streams[key] = fs
	}
	f.mu.Unlock()

	fs.mu.Lock()
	d, fired := fs.s.Push(v)
	fs.mu.Unlock()
	if !fired {
		return FleetDeclaration{}, false
	}
	return FleetDeclaration{Key: key, Declaration: d}, true
}

// Len returns the number of tracked KPI streams.
func (f *Fleet) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.streams)
}

// Keys returns the tracked keys, sorted by their string form.
func (f *Fleet) Keys() []topo.KPIKey {
	f.mu.Lock()
	out := make([]topo.KPIKey, 0, len(f.streams))
	for k := range f.streams {
		out = append(out, k)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Drop forgets a key's stream (e.g. a decommissioned server).
func (f *Fleet) Drop(key topo.KPIKey) {
	f.mu.Lock()
	delete(f.streams, key)
	f.mu.Unlock()
}
