//go:build race

package detect

// raceEnabled reports that this binary was built with -race. Under the
// race detector sync.Pool deliberately drops a fraction of Puts, so the
// scorer's pooled workspaces reallocate and steady-state allocation
// guarantees cannot hold; the allocation tests skip themselves.
const raceEnabled = true
