package detect

import (
	"math"

	"repro/internal/sst"
)

// Stream is the online form of Gate: feed KPI samples one bin at a
// time with Push and receive declarations the moment the persistence
// rule fires — the deployment mode of §5, where measurements arrive
// from the subscription push within a second of collection.
//
// A Stream keeps only the scorer's sliding window of samples, so its
// memory footprint is O(W) regardless of stream length. Scores lag the
// newest sample by the scorer's future span: pushing bin t yields the
// score of bin t−FutureSpan+1, exactly the wall-clock availability
// accounting of Detection.AvailableAt.
type Stream struct {
	det    *Gate
	cfg    sst.Config
	window []float64
	// absBase is the absolute bin index of window[0].
	absBase int
	// n is the number of samples pushed so far.
	n int

	// run state mirrors Gate.fromScores.
	run      int
	lastHit  int
	hits     int
	declared int
	peak     float64
	// open marks a run already declared (so End updates don't re-fire).
	fired bool
}

// NewStream wraps a detector for online use.
func NewStream(det *Gate) *Stream {
	cfg := det.Scorer.Config()
	return &Stream{
		det:      det,
		cfg:      cfg,
		window:   make([]float64, 0, cfg.WindowSize()),
		run:      -1,
		lastHit:  -1,
		declared: -1,
	}
}

// Declaration is an online detection event: the persistence rule was
// satisfied at wall-clock bin At for a run whose evidence started at
// Start.
type Declaration struct {
	// Start is the first above-threshold bin of the run.
	Start int
	// At is the wall-clock bin at which the declaration fired: the
	// sample pushed for bin At completed the evidence.
	At int
	// Score is the score of the bin that completed the persistence
	// requirement.
	Score float64
}

// Push appends the sample for the next bin and reports a declaration
// if the persistence rule fired on this push.
//
// The window is a fixed-capacity buffer: once full, each push shifts
// the contents down one slot in place (W is ~34 points, so the copy is
// a few cache lines) instead of the append-then-reslice pattern, whose
// progressively shrinking capacity forced a fresh allocation and a full
// copy on every steady-state push. With an allocation-free scorer this
// makes the whole Push path allocation-free.
func (s *Stream) Push(v float64) (Declaration, bool) {
	w := s.cfg.WindowSize()
	if len(s.window) == w {
		copy(s.window, s.window[1:])
		s.window[w-1] = v
		s.absBase++
	} else {
		s.window = append(s.window, v)
	}
	s.n++
	if len(s.window) < w {
		return Declaration{}, false
	}

	// The scoreable bin inside the window sits PastSpan from its start.
	tLocal := s.cfg.PastSpan()
	score := s.det.Scorer.ScoreAt(s.window, tLocal)
	scoredBin := s.absBase + tLocal
	return s.observe(scoredBin, score)
}

// observe advances the run state with one (bin, score) pair.
func (s *Stream) observe(bin int, score float64) (Declaration, bool) {
	per := s.det.persistence()
	gap := s.det.MaxGap
	if gap < 0 {
		gap = 0
	}
	above := !math.IsNaN(score) && score >= s.det.Threshold
	if above {
		if s.run < 0 {
			s.run = bin
			s.hits = 0
			s.fired = false
			s.peak = 0
		}
		s.hits++
		s.lastHit = bin
		if score > s.peak {
			s.peak = score
		}
		if s.hits == per && !s.fired {
			s.fired = true
			s.declared = bin
			return Declaration{
				Start: s.run,
				At:    s.n - 1, // wall clock: the bin just pushed
				Score: score,
			}, true
		}
		return Declaration{}, false
	}
	if s.run >= 0 && (math.IsNaN(score) || bin-s.lastHit > gap) {
		s.run, s.hits, s.lastHit, s.declared, s.peak, s.fired = -1, 0, -1, -1, 0, false
	}
	return Declaration{}, false
}

// Len returns the number of samples pushed so far.
func (s *Stream) Len() int { return s.n }

// InRun reports whether an above-threshold run is currently open.
func (s *Stream) InRun() bool { return s.run >= 0 }
