package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC)

func mkSeries(n int, f func(i int) float64) *Series {
	v := make([]float64, n)
	for i := range v {
		v[i] = f(i)
	}
	return New(t0, DefaultStep, v)
}

func TestNewPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nonpositive step should panic")
		}
	}()
	New(t0, 0, nil)
}

func TestLenEndTimeAt(t *testing.T) {
	s := mkSeries(10, func(i int) float64 { return float64(i) })
	if s.Len() != 10 {
		t.Fatal("Len")
	}
	if !s.End().Equal(t0.Add(10 * time.Minute)) {
		t.Fatalf("End = %v", s.End())
	}
	if !s.TimeAt(3).Equal(t0.Add(3 * time.Minute)) {
		t.Fatalf("TimeAt = %v", s.TimeAt(3))
	}
}

func TestIndexOf(t *testing.T) {
	s := mkSeries(5, func(i int) float64 { return 0 })
	if i, ok := s.IndexOf(t0.Add(2*time.Minute + 30*time.Second)); !ok || i != 2 {
		t.Fatalf("IndexOf mid-bin = %d,%v", i, ok)
	}
	if _, ok := s.IndexOf(t0.Add(-time.Second)); ok {
		t.Fatal("before start should be !ok")
	}
	if _, ok := s.IndexOf(t0.Add(5 * time.Minute)); ok {
		t.Fatal("at end should be !ok")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := mkSeries(3, func(i int) float64 { return float64(i) })
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestSliceWindowAround(t *testing.T) {
	s := mkSeries(10, func(i int) float64 { return float64(i) })
	sub := s.Slice(2, 5)
	if sub.Len() != 3 || sub.Values[0] != 2 || !sub.Start.Equal(t0.Add(2*time.Minute)) {
		t.Fatalf("Slice = %+v", sub)
	}
	w := s.Window(6, 3)
	if len(w) != 3 || w[0] != 3 || w[2] != 5 {
		t.Fatalf("Window = %v", w)
	}
	pre, post := s.Around(5, 2)
	if pre[0] != 3 || pre[1] != 4 || post[0] != 5 || post[1] != 6 {
		t.Fatalf("Around = %v %v", pre, post)
	}
}

func TestAroundPanics(t *testing.T) {
	s := mkSeries(5, func(i int) float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete window should panic")
		}
	}()
	s.Around(1, 3)
}

func TestSamePeriodDaysAgo(t *testing.T) {
	// Two days of minutes; value = absolute bin index.
	s := mkSeries(2*1440+100, func(i int) float64 { return float64(i) })
	tIdx := 1440 + 50
	pre, post, ok := s.SamePeriodDaysAgo(tIdx, 5, 1)
	if !ok {
		t.Fatal("historical window should exist")
	}
	if pre[0] != 45 || post[0] != 50 {
		t.Fatalf("historical windows wrong: pre[0]=%v post[0]=%v", pre[0], post[0])
	}
	if _, _, ok := s.SamePeriodDaysAgo(100, 5, 1); ok {
		t.Fatal("window before series start should be !ok")
	}
}

func TestBinModes(t *testing.T) {
	ev := []Event{
		{t0.Add(10 * time.Second), 2},
		{t0.Add(30 * time.Second), 4},
		{t0.Add(90 * time.Second), 10},
	}
	mean := Bin(ev, t0, time.Minute, 3, AggMean)
	if mean.Values[0] != 3 || mean.Values[1] != 10 {
		t.Fatalf("AggMean = %v", mean.Values)
	}
	if !math.IsNaN(mean.Values[2]) {
		t.Fatal("empty bin should be NaN")
	}
	sum := Bin(ev, t0, time.Minute, 3, AggSum)
	if sum.Values[0] != 6 {
		t.Fatalf("AggSum = %v", sum.Values)
	}
	last := Bin(ev, t0, time.Minute, 3, AggLast)
	if last.Values[0] != 4 {
		t.Fatalf("AggLast = %v", last.Values)
	}
}

func TestBinDropsOutOfRange(t *testing.T) {
	ev := []Event{
		{t0.Add(-time.Second), 1},
		{t0.Add(10 * time.Minute), 2},
	}
	s := Bin(ev, t0, time.Minute, 5, AggMean)
	for _, v := range s.Values {
		if !math.IsNaN(v) {
			t.Fatalf("out-of-range events leaked: %v", s.Values)
		}
	}
}

func TestFillGapsInterior(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, math.NaN(), math.NaN(), 4})
	s.FillGaps()
	want := []float64{1, 2, 3, 4}
	for i, w := range want {
		if math.Abs(s.Values[i]-w) > 1e-12 {
			t.Fatalf("FillGaps = %v", s.Values)
		}
	}
}

func TestFillGapsEdges(t *testing.T) {
	s := New(t0, time.Minute, []float64{math.NaN(), 5, math.NaN()})
	s.FillGaps()
	if s.Values[0] != 5 || s.Values[2] != 5 {
		t.Fatalf("edge fill = %v", s.Values)
	}
	empty := New(t0, time.Minute, []float64{math.NaN(), math.NaN()})
	empty.FillGaps()
	if empty.Values[0] != 0 || empty.Values[1] != 0 {
		t.Fatal("all-NaN series should zero-fill")
	}
}

func TestHasGaps(t *testing.T) {
	if !New(t0, time.Minute, []float64{1, math.NaN()}).HasGaps() {
		t.Fatal("gap not detected")
	}
	if New(t0, time.Minute, []float64{1, 2}).HasGaps() {
		t.Fatal("false gap")
	}
}

func TestAlign(t *testing.T) {
	a := New(t0, time.Minute, []float64{0, 1, 2, 3, 4})
	b := New(t0.Add(2*time.Minute), time.Minute, []float64{12, 13, 14, 15})
	out, err := Align(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Len() != 3 || out[0].Values[0] != 2 || out[1].Values[0] != 12 {
		t.Fatalf("Align = %v %v", out[0].Values, out[1].Values)
	}
	if !out[0].Start.Equal(t0.Add(2 * time.Minute)) {
		t.Fatal("aligned start wrong")
	}
}

func TestAlignErrors(t *testing.T) {
	a := New(t0, time.Minute, []float64{1, 2})
	if _, err := Align(a, New(t0, time.Second, []float64{1})); err == nil {
		t.Fatal("step mismatch should error")
	}
	if _, err := Align(a, New(t0.Add(30*time.Second), time.Minute, []float64{1})); err == nil {
		t.Fatal("bin misalignment should error")
	}
	if _, err := Align(a, New(t0.Add(time.Hour), time.Minute, []float64{1})); err == nil {
		t.Fatal("disjoint span should error")
	}
	if out, err := Align(); err != nil || out != nil {
		t.Fatal("Align() of nothing should be nil, nil")
	}
}

func TestAverage(t *testing.T) {
	a := New(t0, time.Minute, []float64{1, 2, math.NaN()})
	b := New(t0, time.Minute, []float64{3, math.NaN(), math.NaN()})
	avg, err := Average([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Values[0] != 2 || avg.Values[1] != 2 || !math.IsNaN(avg.Values[2]) {
		t.Fatalf("Average = %v", avg.Values)
	}
	if _, err := Average(nil); err == nil {
		t.Fatal("empty average should error")
	}
	if _, err := Average([]*Series{a, New(t0, time.Minute, []float64{1})}); err == nil {
		t.Fatal("misaligned average should error")
	}
}

func TestSortEvents(t *testing.T) {
	ev := []Event{{t0.Add(time.Minute), 1}, {t0, 2}}
	SortEvents(ev)
	if !ev[0].T.Equal(t0) {
		t.Fatal("SortEvents did not sort")
	}
}

// Property: Bin + FillGaps yields a finite series covering exactly n
// bins for arbitrary event sets.
func TestBinFillGapsProperty(t *testing.T) {
	f := func(offsets []uint16, values []float64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		var events []Event
		for i := range offsets {
			v := 0.0
			if i < len(values) {
				v = values[i]
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			events = append(events, Event{T: t0.Add(time.Duration(offsets[i]) * time.Second), V: v})
		}
		s := Bin(events, t0, time.Minute, n, AggMean).FillGaps()
		if s.Len() != n {
			return false
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Slice/Window/TimeAt agree — the window of w bins ending at
// index e equals the slice [e−w, e) values.
func TestWindowSliceAgreementProperty(t *testing.T) {
	f := func(raw []float64, eRaw, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := New(t0, time.Minute, raw)
		e := int(eRaw)%len(raw) + 1
		w := int(wRaw)%e + 1
		win := s.Window(e, w)
		sub := s.Slice(e-w, e)
		if len(win) != sub.Len() {
			return false
		}
		for i := range win {
			same := win[i] == sub.Values[i] || (math.IsNaN(win[i]) && math.IsNaN(sub.Values[i]))
			if !same {
				return false
			}
		}
		return sub.Start.Equal(s.TimeAt(e - w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResample(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 3, 5, 7, 9})
	r, err := s.Resample(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 9} // trailing partial group averages itself
	if r.Len() != 3 || r.Step != 2*time.Minute {
		t.Fatalf("resampled = %+v", r)
	}
	for i, w := range want {
		if r.Values[i] != w {
			t.Fatalf("values = %v", r.Values)
		}
	}
	// NaN handling: group with one NaN averages the rest; all-NaN group
	// stays NaN.
	s2 := New(t0, time.Minute, []float64{1, math.NaN(), math.NaN(), math.NaN()})
	r2, _ := s2.Resample(2 * time.Minute)
	if r2.Values[0] != 1 || !math.IsNaN(r2.Values[1]) {
		t.Fatalf("NaN resample = %v", r2.Values)
	}
	// Identity factor clones.
	r3, _ := s.Resample(time.Minute)
	r3.Values[0] = 99
	if s.Values[0] == 99 {
		t.Fatal("identity resample must copy")
	}
	// Errors.
	if _, err := s.Resample(90 * time.Second); err == nil {
		t.Fatal("non-multiple step should error")
	}
	if _, err := s.Resample(0); err == nil {
		t.Fatal("zero step should error")
	}
}
