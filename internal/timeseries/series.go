// Package timeseries provides the fixed-interval KPI time-series model
// used throughout FUNNEL: 1-minute-binned series built from raw
// measurement events, with slicing by wall-clock period, day-over-day
// extraction for the 30-day seasonal baseline (§3.2.5), and gap filling.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DefaultStep is the paper's time bin: KPIs are collected every minute
// and FUNNEL bins all event series into 1-minute buckets (§3.1).
const DefaultStep = time.Minute

// Series is a regularly sampled time series. Values[i] covers the
// half-open interval [Start + i·Step, Start + (i+1)·Step).
type Series struct {
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// New returns a Series starting at start with the given step and values.
// The values slice is used directly (not copied).
func New(start time.Time, step time.Duration, values []float64) *Series {
	if step <= 0 {
		panic(fmt.Sprintf("timeseries: nonpositive step %v", step))
	}
	return &Series{Start: start, Step: step, Values: values}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// End returns the time just past the last bin.
func (s *Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Values)) * s.Step)
}

// TimeAt returns the start time of bin i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// IndexOf returns the bin index containing t and whether t falls inside
// the series' span.
func (s *Series) IndexOf(t time.Time) (int, bool) {
	if t.Before(s.Start) {
		return 0, false
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i >= len(s.Values) {
		return len(s.Values) - 1, false
	}
	return i, true
}

// Clone returns a deep copy.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Start: s.Start, Step: s.Step, Values: v}
}

// Slice returns the sub-series of bins [i, j). The values share the
// underlying array with s.
func (s *Series) Slice(i, j int) *Series {
	if i < 0 || j > len(s.Values) || i > j {
		panic(fmt.Sprintf("timeseries: slice [%d,%d) of %d", i, j, len(s.Values)))
	}
	return &Series{Start: s.TimeAt(i), Step: s.Step, Values: s.Values[i:j]}
}

// Window returns the values of the w bins ending at (and including)
// index end−1, i.e. Values[end−w : end]. It panics when out of range.
func (s *Series) Window(end, w int) []float64 {
	if end-w < 0 || end > len(s.Values) {
		panic(fmt.Sprintf("timeseries: window end=%d w=%d len=%d", end, w, len(s.Values)))
	}
	return s.Values[end-w : end]
}

// Around returns up to w bins before index t (exclusive) and w bins from
// t (inclusive) — the pre/post windows the DiD estimator compares.
// Both slices share the underlying array. It panics if either side is
// incomplete.
func (s *Series) Around(t, w int) (pre, post []float64) {
	if t-w < 0 || t+w > len(s.Values) {
		panic(fmt.Sprintf("timeseries: around t=%d w=%d len=%d", t, w, len(s.Values)))
	}
	return s.Values[t-w : t], s.Values[t : t+w]
}

// SamePeriodDaysAgo returns the w-bin pre window and w-bin post window
// around the same time of day as bin t, but d whole days earlier. This
// is how §3.2.5 builds the seasonal control group out of historical
// measurements. ok is false when the historical window is out of range.
func (s *Series) SamePeriodDaysAgo(t, w, d int) (pre, post []float64, ok bool) {
	shift := d * int(24*time.Hour/s.Step)
	h := t - shift
	if h-w < 0 || h+w > len(s.Values) {
		return nil, nil, false
	}
	return s.Values[h-w : h], s.Values[h : h+w], true
}

// Event is a raw measurement: a timestamped value.
type Event struct {
	T time.Time
	V float64
}

// AggMode selects how events within one bin are combined.
type AggMode int

const (
	// AggMean averages event values within the bin (gauges such as
	// memory utilization).
	AggMean AggMode = iota
	// AggSum totals event values within the bin (counters such as page
	// view count).
	AggSum
	// AggLast keeps the final event in the bin.
	AggLast
)

// Bin aggregates events into a regular series from start with n bins of
// the given step. Events outside the span are dropped. Empty bins are
// filled with NaN; call FillGaps to interpolate them.
func Bin(events []Event, start time.Time, step time.Duration, n int, mode AggMode) *Series {
	vals := make([]float64, n)
	counts := make([]int, n)
	for i := range vals {
		vals[i] = math.NaN()
	}
	for _, e := range events {
		if e.T.Before(start) {
			continue
		}
		i := int(e.T.Sub(start) / step)
		if i < 0 || i >= n {
			continue
		}
		if counts[i] == 0 {
			vals[i] = e.V
		} else {
			switch mode {
			case AggMean:
				// Incremental mean in the overflow-safe form: no
				// intermediate exceeds max(|mean|, |v|), unlike
				// mean + (v−mean)/n whose difference can overflow for
				// near-extreme opposite-signed values.
				c := float64(counts[i])
				vals[i] = vals[i]*(c/(c+1)) + e.V/(c+1)
			case AggSum:
				vals[i] += e.V
			case AggLast:
				vals[i] = e.V
			}
		}
		counts[i]++
	}
	return New(start, step, vals)
}

// FillGaps replaces NaN bins in place by linear interpolation between
// the nearest valid neighbours, extending flat at the edges. A series
// with no valid samples is zero-filled. It returns the receiver.
func (s *Series) FillGaps() *Series {
	v := s.Values
	n := len(v)
	// Find first valid sample.
	first := -1
	for i, x := range v {
		if !math.IsNaN(x) {
			first = i
			break
		}
	}
	if first == -1 {
		for i := range v {
			v[i] = 0
		}
		return s
	}
	for i := 0; i < first; i++ {
		v[i] = v[first]
	}
	last := first
	for i := first + 1; i < n; i++ {
		if math.IsNaN(v[i]) {
			continue
		}
		if i > last+1 {
			// Interpolate the gap (last, i).
			span := float64(i - last)
			for k := last + 1; k < i; k++ {
				frac := float64(k-last) / span
				v[k] = v[last]*(1-frac) + v[i]*frac
			}
		}
		last = i
	}
	for i := last + 1; i < n; i++ {
		v[i] = v[last]
	}
	return s
}

// HasGaps reports whether the series contains NaN bins.
func (s *Series) HasGaps() bool {
	for _, x := range s.Values {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// Align truncates a set of series to their common time span on a shared
// step, returning aligned clones. It returns an error if the steps
// differ, the series are not bin-aligned with each other, or the common
// span is empty.
func Align(series ...*Series) ([]*Series, error) {
	if len(series) == 0 {
		return nil, nil
	}
	step := series[0].Step
	start := series[0].Start
	end := series[0].End()
	for _, s := range series[1:] {
		if s.Step != step {
			return nil, fmt.Errorf("timeseries: step mismatch %v vs %v", s.Step, step)
		}
		if s.Start.Sub(start)%step != 0 {
			return nil, fmt.Errorf("timeseries: series not bin-aligned")
		}
		if s.Start.After(start) {
			start = s.Start
		}
		if s.End().Before(end) {
			end = s.End()
		}
	}
	if !end.After(start) {
		return nil, fmt.Errorf("timeseries: empty common span")
	}
	n := int(end.Sub(start) / step)
	out := make([]*Series, len(series))
	for i, s := range series {
		off := int(start.Sub(s.Start) / step)
		v := make([]float64, n)
		copy(v, s.Values[off:off+n])
		out[i] = New(start, step, v)
	}
	return out, nil
}

// Average returns the pointwise mean of the given series, which must be
// pre-aligned (same start, step and length). The control-group KPI in
// the DiD comparison is the average over all cservers/cinstances
// (§3.2.4). NaN samples are skipped; a bin where every series is NaN
// yields NaN.
func Average(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("timeseries: no series to average")
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n || s.Step != series[0].Step || !s.Start.Equal(series[0].Start) {
			return nil, fmt.Errorf("timeseries: average requires aligned series")
		}
	}
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		var cnt int
		for _, s := range series {
			x := s.Values[i]
			if math.IsNaN(x) {
				continue
			}
			sum += x
			cnt++
		}
		if cnt == 0 {
			v[i] = math.NaN()
		} else {
			v[i] = sum / float64(cnt)
		}
	}
	return New(series[0].Start, series[0].Step, v), nil
}

// SortEvents orders events by time in place; Bin does not require sorted
// input but tests and generators do.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].T.Before(events[j].T) })
}

// Resample returns a new series at a coarser step that must be a whole
// multiple of the current one; each coarse bin averages its fine bins
// (NaN fine bins are skipped; an all-NaN group yields NaN). A trailing
// partial group is averaged from what exists. MERCURY-style analyses
// run on 5- or 15-minute bins; Resample bridges from the 1-minute
// substrate.
func (s *Series) Resample(step time.Duration) (*Series, error) {
	if step <= 0 || step%s.Step != 0 {
		return nil, fmt.Errorf("timeseries: resample step %v not a multiple of %v", step, s.Step)
	}
	factor := int(step / s.Step)
	if factor == 1 {
		return s.Clone(), nil
	}
	n := (len(s.Values) + factor - 1) / factor
	out := make([]float64, n)
	for g := 0; g < n; g++ {
		lo := g * factor
		hi := lo + factor
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		var sum float64
		var cnt int
		for _, v := range s.Values[lo:hi] {
			if math.IsNaN(v) {
				continue
			}
			sum += v
			cnt++
		}
		if cnt == 0 {
			out[g] = math.NaN()
		} else {
			out[g] = sum / float64(cnt)
		}
	}
	return New(s.Start, step, out), nil
}
