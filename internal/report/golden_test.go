package report

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/changelog"
	"repro/internal/detect"
	"repro/internal/funnel"
	"repro/internal/obs"
	"repro/internal/topo"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// goldenReport hand-builds a fully deterministic report exercising
// every verdict branch the renderers distinguish: attributed changes
// (concurrent and historical controls, with and without a pre-trend
// warning), a confounder exclusion, an inconclusive gappy feed, a
// quiet KPI, and a per-KPI processing error.
func goldenReport() *funnel.Report {
	at := time.Date(2015, 12, 3, 12, 0, 0, 0, time.UTC)
	key := func(scope topo.Scope, entity, metric string) topo.KPIKey {
		return topo.KPIKey{Scope: scope, Entity: entity, Metric: metric}
	}
	trace := &obs.Trace{
		ChangeID: "chg-42", Service: "search.web", At: at, Nanos: 2_345_000,
		BinToVerdictNanos: 83_000_000_000, // worst per-KPI latency below
	}
	kt := &obs.KPITrace{
		Key: "server/srv-0/rt.delay", Score: 9.31, Kind: "level-shift-up",
		Control: "concurrent", Alpha: 27.1, TStat: 41.2, Verdict: "changed-by-software",
		BinToVerdictNanos: 83_000_000_000,
	}
	kt.Stages = []obs.StageTiming{
		{Stage: "sst_score", Nanos: 1_520_000},
		{Stage: "persist", Nanos: 8_000},
		{Stage: "did_estimate", Nanos: 112_000},
	}
	trace.Add(kt)
	trace.Add(&obs.KPITrace{Key: "server/srv-0/pv.count", Verdict: "no-change"})
	trace.Add(&obs.KPITrace{Key: "server/srv-1/disk.io", Verdict: "inconclusive", GapFraction: 0.42})

	return &funnel.Report{
		Change: changelog.Change{
			ID: "chg-42", Type: changelog.Upgrade, Service: "search.web",
			Servers: []string{"srv-0", "srv-1"}, At: at, Description: "v2 rollout",
		},
		Set: &topo.ImpactSet{
			ChangedService: "search.web",
			TServers:       []string{"srv-0", "srv-1"},
			CServers:       []string{"srv-2", "srv-3", "srv-4"},
			TInstances:     []string{"search.web@srv-0", "search.web@srv-1"},
			CInstances:     []string{"search.web@srv-2"},
			AffectedServices: []string{
				"search.frontend",
			},
		},
		ChangeBin: 4320,
		Assessments: []funnel.Assessment{
			{
				Key:     key(topo.ScopeServer, "srv-0", "rt.delay"),
				Verdict: funnel.ChangedBySoftware,
				Detection: detect.Detection{
					Start: 4323, DeclaredAt: 4329, AvailableAt: 4334, End: 4380,
					Peak: 9.31, Kind: detect.LevelShiftUp,
				},
				Alpha: 27.1, TStat: 41.2, ControlKind: funnel.ControlConcurrent,
				ControlSimilarity: 0.97,
			},
			{
				Key:     key(topo.ScopeService, "search.web", "err.rate"),
				Verdict: funnel.ChangedBySoftware,
				Detection: detect.Detection{
					Start: 4330, DeclaredAt: 4336, AvailableAt: 4345, End: 4390,
					Peak: 4.02, Kind: detect.RampUp,
				},
				Alpha: -3.4, TStat: -6.8, ControlKind: funnel.ControlHistorical,
				TrendWarning: true,
			},
			{
				Key:     key(topo.ScopeServer, "srv-0", "pv.count"),
				Verdict: funnel.ChangedByOther,
				Detection: detect.Detection{
					Start: 4325, DeclaredAt: 4331, AvailableAt: 4336, End: 4360,
					Peak: 3.10, Kind: detect.LevelShiftUp,
				},
				Alpha: 0.12, TStat: 0.4, ControlKind: funnel.ControlConcurrent,
				ControlSimilarity: 0.99,
			},
			{
				Key:         key(topo.ScopeServer, "srv-1", "disk.io"),
				Verdict:     funnel.Inconclusive,
				GapFraction: 0.42,
			},
			{
				Key:     key(topo.ScopeServer, "srv-1", "mem.util"),
				Verdict: funnel.NoChange,
			},
			{
				Key:     key(topo.ScopeInstance, "search.web@srv-0", "qps"),
				Verdict: funnel.NoChange,
				Err:     errors.New("series missing from store"),
			},
		},
		Trace: trace,
	}
}

// TestGoldenText pins the operator text rendering, terse and verbose,
// against golden files.
func TestGoldenText(t *testing.T) {
	for _, tc := range []struct {
		name    string
		verbose bool
		golden  string
	}{
		{"terse", false, "report_text_terse.golden"},
		{"verbose", true, "report_text_verbose.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteText(&buf, goldenReport(), tc.verbose); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.golden, buf.Bytes())
		})
	}
}

// TestGoldenJSON pins the stable JSON wire form — downstream tooling
// parses this, so field names, omissions and ordering are contract.
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*funnel.Report{goldenReport()}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json.golden", buf.Bytes())
}

// TestGoldenTrace pins the operator trace rendering, including the
// telemetry-disabled notice.
func TestGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceText(&buf, goldenReport().Trace); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceText(&buf, nil); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report_trace.golden", buf.Bytes())
}

// TestGoldenSummary pins the one-line-per-change digest.
func TestGoldenSummary(t *testing.T) {
	quiet := goldenReport()
	quiet.Change.ID = "chg-43"
	quiet.Change.Service = "kv.cache"
	quiet.Assessments = nil
	s := Summary([]*funnel.Report{goldenReport(), quiet})
	checkGolden(t, "report_summary.golden", []byte(s))
}

// TestGoldenReportIsRenderable sanity-checks the fixture against the
// live pipeline types: every verdict value used above must render a
// non-empty string form (guards against enum renumbering silently
// changing the goldens' meaning).
func TestGoldenReportIsRenderable(t *testing.T) {
	for i, a := range goldenReport().Assessments {
		if v := a.Verdict.String(); v == "" || v == "unknown" {
			t.Errorf("assessment %d: unrenderable verdict %q", i, v)
		}
		if a.Verdict != funnel.NoChange && a.Detection.Kind.String() == "" {
			t.Errorf("assessment %d: unrenderable detection kind", i)
		}
	}
}
