// Package report renders FUNNEL assessment reports for the two
// consumers a deployment has: the operations team (fixed-width text,
// step 12 of Fig. 3) and downstream tooling (stable JSON).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/funnel"
	"repro/internal/obs"
)

// JSONReport is the stable wire form of one change assessment.
type JSONReport struct {
	ChangeID    string           `json:"change_id"`
	ChangeType  string           `json:"change_type"`
	Service     string           `json:"service"`
	At          time.Time        `json:"at"`
	Dark        bool             `json:"dark_launch"`
	TServers    []string         `json:"treated_servers"`
	CServers    []string         `json:"control_servers,omitempty"`
	Affected    []string         `json:"affected_services,omitempty"`
	Assessments []JSONAssessment `json:"assessments"`
	// Trace is the per-assessment pipeline trace (present when the
	// assessor ran with a telemetry collector).
	Trace *obs.Trace `json:"trace,omitempty"`
}

// JSONAssessment is the wire form of one KPI verdict.
type JSONAssessment struct {
	Scope        string  `json:"scope"`
	Entity       string  `json:"entity"`
	Metric       string  `json:"metric"`
	Verdict      string  `json:"verdict"`
	Kind         string  `json:"kind,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	TStat        float64 `json:"t_stat,omitempty"`
	Control      string  `json:"control,omitempty"`
	DetectedBin  int     `json:"detected_bin,omitempty"`
	AvailableBin int     `json:"available_bin,omitempty"`
	TrendWarning bool    `json:"trend_warning,omitempty"`
	Similarity   float64 `json:"control_similarity,omitempty"`
	GapFraction  float64 `json:"gap_fraction,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// ToJSON converts a pipeline report to its wire form.
func ToJSON(r *funnel.Report) JSONReport {
	out := JSONReport{
		ChangeID:   r.Change.ID,
		ChangeType: r.Change.Type.String(),
		Service:    r.Change.Service,
		At:         r.Change.At,
		Dark:       r.Set.Dark(),
		TServers:   r.Set.TServers,
		CServers:   r.Set.CServers,
		Affected:   r.Set.AffectedServices,
		Trace:      r.Trace,
	}
	for _, a := range r.Assessments {
		ja := JSONAssessment{
			Scope:        a.Key.Scope.String(),
			Entity:       a.Key.Entity,
			Metric:       a.Key.Metric,
			Verdict:      a.Verdict.String(),
			TrendWarning: a.TrendWarning,
			GapFraction:  a.GapFraction,
		}
		if a.Verdict == funnel.ChangedByOther || a.Verdict == funnel.ChangedBySoftware {
			ja.Kind = a.Detection.Kind.String()
			ja.Alpha = a.Alpha
			ja.TStat = obs.Finite(a.TStat)
			ja.Control = a.ControlKind.String()
			ja.DetectedBin = a.Detection.Start
			ja.AvailableBin = a.Detection.AvailableAt
			ja.Similarity = a.ControlSimilarity
		}
		if a.Err != nil {
			ja.Error = a.Err.Error()
		}
		out.Assessments = append(out.Assessments, ja)
	}
	return out
}

// WriteJSON streams the JSON form of reports as one array.
func WriteJSON(w io.Writer, reports []*funnel.Report) error {
	docs := make([]JSONReport, 0, len(reports))
	for _, r := range reports {
		docs = append(docs, ToJSON(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}

// WriteText renders the operator view of one report: header, the
// software-caused changes first, then (optionally) the excluded and
// quiet KPIs.
func WriteText(w io.Writer, r *funnel.Report, verbose bool) error {
	mode := "full-launch"
	if r.Set.Dark() {
		mode = fmt.Sprintf("dark-launch (%d treated / %d control servers)",
			len(r.Set.TServers), len(r.Set.CServers))
	}
	if _, err := fmt.Fprintf(w, "%s %s on %s at %s [%s]\n",
		r.Change.ID, r.Change.Type, r.Change.Service,
		r.Change.At.Format("2006-01-02 15:04"), mode); err != nil {
		return err
	}
	if r.Trace != nil && r.Trace.BinToVerdictNanos > 0 {
		if _, err := fmt.Fprintf(w, "  data-to-verdict latency %s (freshest evidence at emission)\n",
			time.Duration(r.Trace.BinToVerdictNanos).Round(time.Millisecond)); err != nil {
			return err
		}
	}
	flagged := r.Flagged()
	if len(flagged) == 0 {
		if _, err := fmt.Fprintln(w, "  no KPI changes attributed to this software change"); err != nil {
			return err
		}
	}
	for _, a := range flagged {
		warn := ""
		if a.TrendWarning {
			warn = "  [pre-trend warning]"
		}
		delay := a.Detection.AvailableAt - r.ChangeBin
		if _, err := fmt.Fprintf(w, "  CHANGED %-45s %-16s α=%+8.2f detected %+dmin (%s control)%s\n",
			a.Key, a.Detection.Kind, a.Alpha, delay, a.ControlKind, warn); err != nil {
			return err
		}
	}
	if !verbose {
		return nil
	}
	for _, a := range r.Assessments {
		switch a.Verdict {
		case funnel.ChangedByOther:
			if _, err := fmt.Fprintf(w, "  excluded %-44s α=%+8.2f (moved with the %s control)\n",
				a.Key, a.Alpha, a.ControlKind); err != nil {
				return err
			}
		case funnel.Inconclusive:
			if _, err := fmt.Fprintf(w, "  inconcl. %-44s %.0f%% of window missing — check the feed\n",
				a.Key, a.GapFraction*100); err != nil {
				return err
			}
		case funnel.NoChange:
			if _, err := fmt.Fprintf(w, "  quiet    %-44s\n", a.Key); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTraceText renders a pipeline trace for the operator: total
// wall-clock, then one line per KPI with its verdict, decision
// evidence, and per-stage timings. Nil traces render a single notice
// (assessors without a collector attach none).
func WriteTraceText(w io.Writer, tr *obs.Trace) error {
	if tr == nil {
		_, err := fmt.Fprintln(w, "no trace recorded (telemetry disabled)")
		return err
	}
	header := fmt.Sprintf("trace %s on %s at %s: %d KPI(s) in %s",
		tr.ChangeID, tr.Service, tr.At.Format("2006-01-02 15:04"),
		len(tr.KPIs), time.Duration(tr.Nanos))
	if tr.BinToVerdictNanos > 0 {
		header += fmt.Sprintf(" (data-to-verdict %s)",
			time.Duration(tr.BinToVerdictNanos).Round(time.Millisecond))
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, k := range tr.KPIs {
		detail := ""
		switch k.Verdict {
		case "no-change":
		case "inconclusive":
			detail = fmt.Sprintf(" gap=%.0f%%", k.GapFraction*100)
		default:
			detail = fmt.Sprintf(" score=%.2f kind=%s control=%s α=%+.2f t=%+.2f",
				k.Score, k.Kind, k.Control, k.Alpha, k.TStat)
		}
		if k.BinToVerdictNanos > 0 {
			detail += fmt.Sprintf(" b2v=%s",
				time.Duration(k.BinToVerdictNanos).Round(time.Millisecond))
		}
		if k.Err != "" {
			detail += " error=" + k.Err
		}
		if _, err := fmt.Fprintf(w, "  %-45s %-20s%s\n", k.Key, k.Verdict, detail); err != nil {
			return err
		}
		for _, s := range k.Stages {
			if _, err := fmt.Fprintf(w, "    %-15s %s\n", s.Stage, time.Duration(s.Nanos)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary condenses a batch of reports into one line per change plus a
// total, for scanning a day's worth of assessments.
func Summary(reports []*funnel.Report) string {
	var b strings.Builder
	totalFlagged := 0
	for _, r := range reports {
		n := len(r.Flagged())
		totalFlagged += n
		status := "ok"
		if n > 0 {
			status = fmt.Sprintf("%d KPI change(s)", n)
		}
		fmt.Fprintf(&b, "%-14s %-24s %s\n", r.Change.ID, r.Change.Service, status)
	}
	fmt.Fprintf(&b, "total: %d change(s), %d KPI change(s) attributed\n", len(reports), totalFlagged)
	return b.String()
}
