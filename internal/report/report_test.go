package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/funnel"
	"repro/internal/obs"
	"repro/internal/workload"
)

// assessOne produces a real report from a tiny scenario.
func assessOne(t *testing.T) *funnel.Report {
	t.Helper()
	p := workload.DefaultParams()
	p.Changes = 2
	p.HistoryDays = 2
	sc, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := funnel.NewAssessor(sc.Source, sc.Topo, funnel.Config{
		ServerMetrics:   workload.ServerMetrics(),
		InstanceMetrics: workload.InstanceMetrics(),
		HistoryDays:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Assess(sc.Cases[0].Change)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestToJSONShape(t *testing.T) {
	rep := assessOne(t)
	doc := ToJSON(rep)
	if doc.ChangeID != rep.Change.ID || doc.Service != rep.Change.Service {
		t.Fatalf("header mismatch: %+v", doc)
	}
	if len(doc.Assessments) != len(rep.Assessments) {
		t.Fatalf("assessments %d != %d", len(doc.Assessments), len(rep.Assessments))
	}
	flagged := 0
	for _, a := range doc.Assessments {
		if a.Verdict == "changed-by-software" {
			flagged++
			if a.Kind == "" || a.Control == "" {
				t.Fatalf("flagged assessment missing detail: %+v", a)
			}
		}
	}
	if flagged != len(rep.Flagged()) {
		t.Fatalf("flagged count mismatch")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rep := assessOne(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*funnel.Report{rep}); err != nil {
		t.Fatal(err)
	}
	var docs []JSONReport
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].ChangeID != rep.Change.ID {
		t.Fatalf("round trip = %+v", docs)
	}
}

func TestWriteTextModes(t *testing.T) {
	rep := assessOne(t)
	var terse, verbose bytes.Buffer
	if err := WriteText(&terse, rep, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&verbose, rep, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(terse.String(), rep.Change.ID) {
		t.Fatal("text misses change ID")
	}
	if !strings.Contains(terse.String(), "CHANGED") {
		t.Fatal("text misses flagged lines for an effect case")
	}
	if verbose.Len() <= terse.Len() {
		t.Fatal("verbose output should be longer")
	}
	if !strings.Contains(verbose.String(), "quiet") {
		t.Fatal("verbose output misses quiet KPIs")
	}
}

func TestTraceRendering(t *testing.T) {
	p := workload.DefaultParams()
	p.Changes = 1
	p.HistoryDays = 2
	sc, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	a, err := funnel.NewAssessor(sc.Source, sc.Topo, funnel.Config{
		ServerMetrics:   workload.ServerMetrics(),
		InstanceMetrics: workload.InstanceMetrics(),
		HistoryDays:     2,
		Obs:             col,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Assess(sc.Cases[0].Change)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("instrumented assessor attached no trace")
	}

	// The trace travels with the JSON form and round-trips.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*funnel.Report{rep}); err != nil {
		t.Fatal(err)
	}
	var docs []JSONReport
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatal(err)
	}
	if docs[0].Trace == nil || docs[0].Trace.ChangeID != rep.Change.ID {
		t.Fatalf("JSON trace = %+v", docs[0].Trace)
	}

	// Text rendering names the change and each stage that ran.
	var txt bytes.Buffer
	if err := WriteTraceText(&txt, rep.Trace); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	if !strings.Contains(out, rep.Change.ID) || !strings.Contains(out, "sst_score") {
		t.Fatalf("trace text = %q", out)
	}

	// Nil traces degrade to a notice.
	var none bytes.Buffer
	if err := WriteTraceText(&none, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(none.String(), "no trace recorded") {
		t.Fatalf("nil-trace text = %q", none.String())
	}
}

func TestSummary(t *testing.T) {
	rep := assessOne(t)
	s := Summary([]*funnel.Report{rep})
	if !strings.Contains(s, rep.Change.ID) || !strings.Contains(s, "total: 1 change(s)") {
		t.Fatalf("summary = %q", s)
	}
}

func TestWriteTextFullLaunchAndWarning(t *testing.T) {
	rep := assessOne(t)
	// Mutate into a full-launch, warning-carrying report to cover the
	// remaining render branches.
	rep.Set.CServers = nil
	rep.Set.CInstances = nil
	for i := range rep.Assessments {
		if rep.Assessments[i].Verdict == funnel.ChangedBySoftware {
			rep.Assessments[i].TrendWarning = true
		}
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, rep, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "full-launch") {
		t.Fatal("full-launch header missing")
	}
	if !strings.Contains(out, "[pre-trend warning]") {
		t.Fatal("trend warning missing from text")
	}
}

func TestWriteTextNoFlags(t *testing.T) {
	rep := assessOne(t)
	rep.Assessments = nil
	var buf bytes.Buffer
	if err := WriteText(&buf, rep, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no KPI changes attributed") {
		t.Fatalf("empty-report text = %q", buf.String())
	}
}
