package eval

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/funnel"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestBakeoffTableGolden regenerates a miniature bake-off table from a
// pinned corpus and compares it byte for byte against the committed
// golden (refresh with `go test ./internal/eval -run Bakeoff -update`).
// It is the same determinism contract CI enforces on EXPERIMENTS.md at
// full scale: every cell except ns/op must reproduce exactly.
func TestBakeoffTableGolden(t *testing.T) {
	p := workload.DefaultParams()
	p.Changes = 6
	p.HistoryDays = 1
	p.Seed = 11
	p.TrapFraction = 0.5
	sc, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}

	mrls := baselines.NewMRLS()
	mthr, err := CalibrateOnScenario(sc, mrls, 8, 0.999, 1.1,
		workload.MetricMemUtil, workload.MetricQueueLen)
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{
		&FunnelMethod{Label: "sst/did", Config: funnel.Config{HistoryDays: p.HistoryDays}},
		&FunnelMethod{Label: "sst/bsts", Config: funnel.Config{HistoryDays: p.HistoryDays, Causality: "bsts"}},
		&BaselineMethod{Label: "mrls", Scorer: mrls, Threshold: mthr, Persistence: 1},
	}
	results, err := Run(sc, methods, Options{NegativeWeight: 86})
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"did", "bsts", "—"}
	rows := make([]BakeoffRow, len(results))
	for i, res := range results {
		rows[i] = BakeoffRow{
			Detector:        strings.SplitN(res.Method, "/", 2)[0],
			Stage:           stages[i],
			Overall:         res.Overall(),
			MedianDelayBins: res.DelayQuantile(0.5),
			// A fixed stand-in: the golden pins the deterministic cells,
			// and MaskBakeoffVolatile must hide this column anyway.
			PerWindow: 1234 * time.Nanosecond,
		}
	}
	got := MaskBakeoffVolatile(RenderBakeoff(rows))

	path := filepath.Join("testdata", "bakeoff_table.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if got != string(want) {
		t.Fatalf("bake-off table drifted from the golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestBakeoffSplice pins the marker machinery: splice replaces only the
// marked region, extract returns it, and both fail loudly on documents
// without markers.
func TestBakeoffSplice(t *testing.T) {
	doc := "prose above\n" + BakeoffBegin + "\nold table\n" + BakeoffEnd + "\nprose below\n"
	out, err := SpliceBakeoff(doc, "| new |\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "prose above") || !strings.Contains(out, "prose below") {
		t.Fatalf("splice destroyed surrounding prose:\n%s", out)
	}
	if strings.Contains(out, "old table") || !strings.Contains(out, "| new |") {
		t.Fatalf("splice did not replace the marked region:\n%s", out)
	}
	inner, err := ExtractBakeoff(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(inner) != "| new |" {
		t.Fatalf("extract returned %q", inner)
	}
	if _, err := SpliceBakeoff("no markers here", "x"); err == nil {
		t.Fatal("splice on a marker-less document must error")
	}
	if _, err := ExtractBakeoff(BakeoffEnd + BakeoffBegin); err == nil {
		t.Fatal("reversed markers must error")
	}
}

// TestBakeoffMask pins that masking blanks exactly the ns/op cells:
// two tables differing only in timings must compare equal, two tables
// differing in an accuracy cell must not.
func TestBakeoffMask(t *testing.T) {
	mk := func(ns int64, prec string) string {
		return RenderBakeoff([]BakeoffRow{{
			Detector: "sst", Stage: "did",
			Overall:         Confusion{TP: 1, TN: 1},
			MedianDelayBins: 5,
			PerWindow:       time.Duration(ns),
		}, {
			Detector: "mrls", Stage: prec,
			Overall:         Confusion{TP: 1, FP: 1},
			MedianDelayBins: 1,
			PerWindow:       time.Duration(2 * ns),
		}})
	}
	if MaskBakeoffVolatile(mk(100, "—")) != MaskBakeoffVolatile(mk(999, "—")) {
		t.Fatal("timing-only difference survived the mask")
	}
	if MaskBakeoffVolatile(mk(100, "—")) == MaskBakeoffVolatile(mk(100, "x")) {
		t.Fatal("a non-timing difference was masked away")
	}
}
