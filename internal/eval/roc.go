package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/detect"
	"repro/internal/sst"
	"repro/internal/workload"
)

// §4.1 notes that fixing each method's parameters at its best accuracy
// "draws the same conclusion as the method that changing the value of
// the parameters, calculating the accuracies and plotting the receiver
// operating characteristic (ROC) curves". This file provides that
// alternative methodology: sweep the detection threshold of a scorer
// across the scenario and emit the (FPR, TPR) curve.

// ROCPoint is one operating point of a threshold sweep.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // recall at this threshold
	FPR       float64 // 1 − TNR at this threshold
}

// AUC returns the area under a curve of points sorted by ascending FPR
// (trapezoidal rule, clamped to the observed FPR range).
func AUC(points []ROCPoint) float64 {
	if len(points) < 2 {
		return math.NaN()
	}
	pts := make([]ROCPoint, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].FPR < pts[j].FPR })
	var area float64
	for i := 1; i < len(pts); i++ {
		area += (pts[i].FPR - pts[i-1].FPR) * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area
}

// ROCSweep scores every treated KPI of the scenario once, then sweeps
// thresholds over the peak detection scores to produce the ROC curve.
// Detection uses the same persistence machinery as the evaluation
// driver; the per-item statistic is the highest persistent-run peak in
// the assessment window (0 when no run survives persistence even at
// threshold 0 — which cannot happen for finite scores, so every item
// gets a peak and the sweep is exact).
//
// steps is the number of threshold samples (≥ 2); they are placed at
// quantiles of the observed peaks so every step moves the curve.
func ROCSweep(sc *workload.Scenario, scorer sst.Scorer, persistence, windowBins, steps int) ([]ROCPoint, error) {
	if steps < 2 {
		steps = 10
	}
	if windowBins <= 0 {
		windowBins = 60
	}
	type item struct {
		peak    float64
		changed bool
	}
	var items []item
	cfg := scorer.Config()
	// A threshold-0 detector: every finite score joins a run, so the
	// per-item peak equals the largest persistent-run peak.
	det := detect.New(scorer, 0)
	if persistence > 0 {
		det.Persistence = persistence
	}
	for _, cs := range sc.Cases {
		for key, truth := range cs.Truth {
			series, ok := sc.Source.Series(key)
			if !ok {
				continue
			}
			lo := cs.ChangeBin - windowBins - cfg.PastSpan()
			if lo < 0 {
				lo = 0
			}
			hi := cs.ChangeBin + windowBins + cfg.FutureSpan()
			if hi > series.Len() {
				hi = series.Len()
			}
			peak := 0.0
			for _, d := range det.Detect(series.Values[lo:hi]) {
				if d.End+lo >= cs.ChangeBin-2 && d.Peak > peak {
					peak = d.Peak
				}
			}
			items = append(items, item{peak: peak, changed: truth.Changed})
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("eval: no items to sweep")
	}

	peaks := make([]float64, len(items))
	for i, it := range items {
		peaks[i] = it.peak
	}
	sort.Float64s(peaks)

	var curve []ROCPoint
	for s := 0; s < steps; s++ {
		q := float64(s) / float64(steps-1)
		thr := peaks[int(q*float64(len(peaks)-1))]
		var tp, fn, fp, tn float64
		for _, it := range items {
			pred := it.peak >= thr && it.peak > 0
			switch {
			case pred && it.changed:
				tp++
			case pred && !it.changed:
				fp++
			case !pred && it.changed:
				fn++
			default:
				tn++
			}
		}
		curve = append(curve, ROCPoint{
			Threshold: thr,
			TPR:       ratio(tp, tp+fn),
			FPR:       ratio(fp, fp+tn),
		})
	}
	return curve, nil
}
