// Package eval reproduces the paper's evaluation methodology (§4):
// confusion-matrix accounting per KPI type with the ×86 true-negative
// scaling rule of §4.2.1, detection-delay distributions (Fig. 5),
// per-window computational-cost measurement (Table 2), and the
// deployment-style precision accounting of Table 3.
package eval

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Confusion is a weighted confusion matrix.
type Confusion struct {
	TP, TN, FP, FN float64
}

// Add records one outcome with weight 1.
func (c *Confusion) Add(predicted, actual bool) { c.AddWeighted(predicted, actual, 1) }

// AddWeighted records one outcome with the given weight. §4.2.1 scales
// the counts of the no-change cases by 86 (= 6194/72) to approximate
// the full population from the labelled sample.
func (c *Confusion) AddWeighted(predicted, actual bool, weight float64) {
	switch {
	case predicted && actual:
		c.TP += weight
	case predicted && !actual:
		c.FP += weight
	case !predicted && actual:
		c.FN += weight
	default:
		c.TN += weight
	}
}

// Merge adds another matrix into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.TN += o.TN
	c.FP += o.FP
	c.FN += o.FN
}

// Total returns the weighted item count.
func (c Confusion) Total() float64 { return c.TP + c.TN + c.FP + c.FN }

// Precision returns TP/(TP+FP), or NaN when undefined.
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Recall returns TP/(TP+FN), or NaN when undefined.
func (c Confusion) Recall() float64 { return ratio(c.TP, c.TP+c.FN) }

// TNR returns TN/(TN+FP), or NaN when undefined.
func (c Confusion) TNR() float64 { return ratio(c.TN, c.TN+c.FP) }

// Accuracy returns (TP+TN)/Total, or NaN when empty.
func (c Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.Total()) }

// ratio guards divide-by-zero with NaN.
func ratio(num, den float64) float64 {
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Prediction is one method's verdict for one treated KPI of one case.
type Prediction struct {
	// Changed is the method's claim that the KPI changed *because of*
	// the software change.
	Changed bool
	// AvailableAt is the wall-clock bin at which the claim could first
	// be made (meaningful when Changed).
	AvailableAt int
}

// Method is an assessment method under evaluation: FUNNEL, the
// improved SST without DiD, CUSUM or MRLS.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// AssessCase returns a prediction for every treated KPI of the
	// case.
	AssessCase(sc *workload.Scenario, cs workload.Case) (map[topo.KPIKey]Prediction, error)
}

// MetricClass maps the corpus metrics to their generated KPI character;
// the evaluation buckets items by it, as §4.2.1 buckets by seasonal/
// stationary/variable.
func MetricClass(metric string) stats.KPIType {
	switch metric {
	case workload.MetricPageViews, workload.MetricEffectiveClicks:
		return stats.Seasonal
	case workload.MetricMemUtil, workload.MetricQueueLen:
		return stats.Stationary
	default:
		return stats.Variable
	}
}

// Result aggregates a method's evaluation outcome.
type Result struct {
	Method string
	// ByType holds one weighted confusion matrix per KPI type.
	ByType map[stats.KPIType]*Confusion
	// Delays holds per-true-positive detection delays in minutes.
	Delays []float64
}

// Overall returns the merged confusion matrix.
func (r *Result) Overall() Confusion {
	var c Confusion
	for _, m := range r.ByType {
		c.Merge(*m)
	}
	return c
}

// DelayQuantile returns the q-quantile of the recorded delays.
func (r *Result) DelayQuantile(q float64) float64 { return stats.Quantile(r.Delays, q) }

// DelayCCDF returns the empirical CCDF of the recorded delays (Fig. 5).
func (r *Result) DelayCCDF() []stats.CCDFPoint { return stats.CCDF(r.Delays) }

// Options tunes an evaluation run.
type Options struct {
	// NegativeWeight scales outcomes of cases without injected effects
	// (§4.2.1 uses 86). 0 means 1.
	NegativeWeight float64
}

// Run evaluates every method on the scenario.
func Run(sc *workload.Scenario, methods []Method, opts Options) ([]*Result, error) {
	w := opts.NegativeWeight
	if w <= 0 {
		w = 1
	}
	results := make([]*Result, 0, len(methods))
	for _, m := range methods {
		res := &Result{
			Method: m.Name(),
			ByType: map[stats.KPIType]*Confusion{
				stats.Seasonal:   {},
				stats.Stationary: {},
				stats.Variable:   {},
			},
		}
		for _, cs := range sc.Cases {
			preds, err := m.AssessCase(sc, cs)
			if err != nil {
				return nil, fmt.Errorf("eval: %s on %s: %w", m.Name(), cs.Change.ID, err)
			}
			caseHasEffect := false
			for _, tr := range cs.Truth {
				if tr.Changed {
					caseHasEffect = true
					break
				}
			}
			weight := 1.0
			if !caseHasEffect {
				weight = w
			}
			for key, truth := range cs.Truth {
				pred := preds[key]
				res.ByType[MetricClass(key.Metric)].AddWeighted(pred.Changed, truth.Changed, weight)
				if pred.Changed && truth.Changed {
					delay := float64(pred.AvailableAt - truth.StartBin)
					if delay < 0 {
						delay = 0
					}
					res.Delays = append(res.Delays, delay)
				}
			}
		}
		sort.Float64s(res.Delays)
		results = append(results, res)
	}
	return results, nil
}

// TimePerWindow measures the average per-window cost of fn over n
// evaluations of a pre-built closure. It is intentionally simple: the
// Go benchmark harness in bench_test.go provides the rigorous numbers;
// this function feeds the funnelbench CLI.
func TimePerWindow(fn func(), n int) time.Duration {
	if n < 1 {
		n = 1
	}
	fn() // warm up
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

// CoresForMillionKPIs converts a per-window cost into the number of CPU
// cores needed to score one million KPIs every minute, the last row of
// Table 2.
func CoresForMillionKPIs(perWindow time.Duration) int {
	perCorePerMinute := float64(time.Minute) / float64(perWindow)
	return int(math.Ceil(1e6 / perCorePerMinute))
}
