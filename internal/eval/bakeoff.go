package eval

import (
	"fmt"
	"strings"
	"time"
)

// Markers delimiting the generated bake-off table inside EXPERIMENTS.md.
// The harness rewrites everything between them in place; the prose
// around them is hand-maintained.
const (
	BakeoffBegin = "<!-- bakeoff:begin -->"
	BakeoffEnd   = "<!-- bakeoff:end -->"
)

// BakeoffRow is one detector's line in the bake-off table: the overall
// weighted confusion metrics, the median detection latency over true
// positives, and the per-window scoring cost. Everything except
// PerWindow is deterministic given the corpus seed; drift checks mask
// the timing column.
type BakeoffRow struct {
	// Detector is the registry name (see detect.Detectors).
	Detector string
	// Stage names the causality stage the row ran with: "did", "bsts",
	// or "—" for score-only baselines that attribute every detection.
	Stage string
	// Overall is the merged confusion matrix across KPI types.
	Overall Confusion
	// MedianDelayBins is the median detection latency in bins over true
	// positives (NaN when the row produced none).
	MedianDelayBins float64
	// PerWindow is the measured cost of scoring one window.
	PerWindow time.Duration
}

// RenderBakeoff renders rows as a GitHub-flavoured markdown table, the
// repo's Table-1 analogue for the detector arena. Row order is
// preserved; callers sort.
func RenderBakeoff(rows []BakeoffRow) string {
	var b strings.Builder
	b.WriteString("| Detector | Causality | Precision | Recall | TNR | Accuracy | Median delay (bins) | ns/op |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		delay := "—"
		if r.MedianDelayBins == r.MedianDelayBins { // not NaN
			delay = fmt.Sprintf("%.0f", r.MedianDelayBins)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %d |\n",
			r.Detector, r.Stage,
			pct(r.Overall.Precision()), pct(r.Overall.Recall()),
			pct(r.Overall.TNR()), pct(r.Overall.Accuracy()),
			delay, r.PerWindow.Nanoseconds())
	}
	return b.String()
}

// pct formats a ratio as a fixed-width percentage, with NaN rendered as
// a dash so empty cells stay diffable.
func pct(v float64) string {
	if v != v {
		return "—"
	}
	return fmt.Sprintf("%.2f%%", 100*v)
}

// SpliceBakeoff replaces the region between the bake-off markers in doc
// with table, keeping the markers. It errors if either marker is
// missing or out of order, so a mangled document fails loudly instead
// of silently appending.
func SpliceBakeoff(doc, table string) (string, error) {
	lo := strings.Index(doc, BakeoffBegin)
	hi := strings.Index(doc, BakeoffEnd)
	if lo < 0 || hi < 0 || hi < lo {
		return "", fmt.Errorf("eval: bake-off markers %q...%q not found in document", BakeoffBegin, BakeoffEnd)
	}
	return doc[:lo+len(BakeoffBegin)] + "\n" + table + doc[hi:], nil
}

// ExtractBakeoff returns the current content between the markers
// (without them), for drift comparison.
func ExtractBakeoff(doc string) (string, error) {
	lo := strings.Index(doc, BakeoffBegin)
	hi := strings.Index(doc, BakeoffEnd)
	if lo < 0 || hi < 0 || hi < lo {
		return "", fmt.Errorf("eval: bake-off markers %q...%q not found in document", BakeoffBegin, BakeoffEnd)
	}
	return doc[lo+len(BakeoffBegin) : hi], nil
}

// MaskBakeoffVolatile blanks the ns/op column (the last cell) of every
// data row so drift checks compare only the deterministic cells:
// timings vary run to run by design, accuracy numbers must not.
func MaskBakeoffVolatile(table string) string {
	lines := strings.Split(table, "\n")
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "|") || strings.HasPrefix(trimmed, "|---") {
			continue
		}
		cells := strings.Split(trimmed, "|")
		// "| a | b |" splits into ["", " a ", " b ", ""]: the last data
		// cell is at len-2.
		if len(cells) < 4 || strings.Contains(cells[1], "Detector") {
			continue
		}
		cells[len(cells)-2] = " — "
		lines[i] = strings.Join(cells, "|")
	}
	return strings.Join(lines, "\n")
}
