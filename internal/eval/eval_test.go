package eval

import (
	"math"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/funnel"
	"repro/internal/sst"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	c.Add(false, false) // TN
	if c.Total() != 5 {
		t.Fatalf("Total = %v", c.Total())
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 {
		t.Fatalf("P/R = %v/%v", c.Precision(), c.Recall())
	}
	if math.Abs(c.TNR()-2.0/3) > 1e-12 {
		t.Fatalf("TNR = %v", c.TNR())
	}
	if c.Accuracy() != 0.6 {
		t.Fatalf("Accuracy = %v", c.Accuracy())
	}
}

func TestConfusionWeighted(t *testing.T) {
	var c Confusion
	c.AddWeighted(false, false, 86)
	c.AddWeighted(true, true, 1)
	if c.TN != 86 || c.TP != 1 {
		t.Fatalf("weights lost: %+v", c)
	}
	var d Confusion
	d.Merge(c)
	if d.Total() != 87 {
		t.Fatalf("Merge = %+v", d)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if !math.IsNaN(c.Precision()) || !math.IsNaN(c.Accuracy()) {
		t.Fatal("empty matrix metrics should be NaN")
	}
}

func TestMetricClass(t *testing.T) {
	cases := map[string]stats.KPIType{
		workload.MetricPageViews:       stats.Seasonal,
		workload.MetricEffectiveClicks: stats.Seasonal,
		workload.MetricMemUtil:         stats.Stationary,
		workload.MetricQueueLen:        stats.Stationary,
		workload.MetricCtxSwitch:       stats.Variable,
		workload.MetricRespDelay:       stats.Variable,
		workload.MetricNIC:             stats.Variable,
	}
	for m, want := range cases {
		if got := MetricClass(m); got != want {
			t.Errorf("MetricClass(%s) = %v, want %v", m, got, want)
		}
	}
}

func TestCoresForMillionKPIs(t *testing.T) {
	// 401.8 µs per window → ceil(1e6 / (60s/401.8µs)) = 7 (Table 2).
	if got := CoresForMillionKPIs(401800 * time.Nanosecond); got != 7 {
		t.Fatalf("FUNNEL cores = %d, want 7", got)
	}
	if got := CoresForMillionKPIs(1846 * time.Microsecond); got != 31 {
		t.Fatalf("CUSUM cores = %d, want 31", got)
	}
	if got := CoresForMillionKPIs(2852 * time.Millisecond); got != 47534 {
		// ceil(1e6·2.852/60) = 47534; the paper prints 47526 from
		// unrounded measurements.
		t.Fatalf("MRLS cores = %d", got)
	}
}

func TestTimePerWindow(t *testing.T) {
	d := TimePerWindow(func() { time.Sleep(100 * time.Microsecond) }, 3)
	if d < 50*time.Microsecond {
		t.Fatalf("timer too low: %v", d)
	}
}

// miniScenario builds a small corpus for driver tests.
func miniScenario(t *testing.T) *workload.Scenario {
	t.Helper()
	p := workload.DefaultParams()
	p.Changes = 6
	p.HistoryDays = 2
	sc, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestRunFunnelVsImprovedSST(t *testing.T) {
	sc := miniScenario(t)
	methods := []Method{
		&FunnelMethod{Label: "FUNNEL", Config: funnel.Config{HistoryDays: 2}},
		&FunnelMethod{Label: "ImprovedSST", Config: funnel.Config{HistoryDays: 2, SkipDiD: true}},
	}
	results, err := Run(sc, methods, Options{NegativeWeight: 86})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	full := results[0].Overall()
	noDiD := results[1].Overall()
	if full.Total() != noDiD.Total() {
		t.Fatalf("totals differ: %v vs %v", full.Total(), noDiD.Total())
	}
	// The ×86 weighting must be visible in the totals.
	var raw int
	for _, cs := range sc.Cases {
		raw += len(cs.Truth)
	}
	if full.Total() <= float64(raw) {
		t.Fatalf("weighted total %v not above raw %d", full.Total(), raw)
	}
	// DiD can only remove false positives relative to the ablation.
	if full.FP > noDiD.FP {
		t.Fatalf("FUNNEL FP %v > ImprovedSST FP %v", full.FP, noDiD.FP)
	}
	// FUNNEL should do decently overall on this easy corpus.
	if acc := full.Accuracy(); acc < 0.9 {
		t.Fatalf("FUNNEL accuracy = %v", acc)
	}
	// Delays recorded for true positives only.
	if len(results[0].Delays) == 0 {
		t.Fatal("no delays recorded")
	}
	for _, d := range results[0].Delays {
		if d < 0 || d > 200 {
			t.Fatalf("implausible delay %v", d)
		}
	}
}

func TestRunBaselineMethod(t *testing.T) {
	sc := miniScenario(t)
	cus := &BaselineMethod{
		Label:     "CUSUM",
		Scorer:    &baselines.CUSUM{Window: 60, Bootstraps: 100, MinRelRange: 2},
		Threshold: 2,
	}
	results, err := Run(sc, []Method{cus}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := results[0].Overall()
	if c.Total() == 0 {
		t.Fatal("no items evaluated")
	}
	if c.TP == 0 {
		t.Fatal("CUSUM found nothing at a moderate threshold on 6–20σ shifts")
	}
}

func TestCalibrateOnScenario(t *testing.T) {
	sc := miniScenario(t)
	scorer := funnelScorer()
	thr, err := CalibrateOnScenario(sc, scorer, 6, 0.999, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0 || math.IsNaN(thr) {
		t.Fatalf("threshold = %v", thr)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Delays: []float64{1, 2, 3, 4, 5}}
	if r.DelayQuantile(0.5) != 3 {
		t.Fatalf("median delay = %v", r.DelayQuantile(0.5))
	}
	if pts := r.DelayCCDF(); len(pts) != 5 || pts[0].P != 1 {
		t.Fatalf("CCDF = %v", pts)
	}
}

// funnelScorer builds the deployed IKA scorer configuration.
func funnelScorer() sstScorer {
	return sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true})
}

type sstScorer = sst.Scorer

func TestSimulateDeployment(t *testing.T) {
	sc := miniScenario(t)
	m := &FunnelMethod{Label: "FUNNEL", Config: funnel.Config{HistoryDays: 2}}
	stats, err := SimulateDeployment(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changes != len(sc.Cases) || stats.KPIs != sc.Source.Len() {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.KPIChanges == 0 || stats.ChangesWithImpact == 0 {
		t.Fatal("no deliveries in a corpus with injected effects")
	}
	if stats.TP+stats.FP != stats.KPIChanges {
		t.Fatalf("TP+FP=%d != deliveries %d", stats.TP+stats.FP, stats.KPIChanges)
	}
	if p := stats.Precision(); p < 0.9 {
		t.Fatalf("precision = %v", p)
	}
}

func TestROCSweepAndAUC(t *testing.T) {
	sc := miniScenario(t)
	scorer := funnelScorer()
	curve, err := ROCSweep(sc, scorer, 7, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 12 {
		t.Fatalf("curve points = %d", len(curve))
	}
	for _, p := range curve {
		if p.TPR < 0 || p.TPR > 1 || p.FPR < 0 || p.FPR > 1 {
			t.Fatalf("point out of range: %+v", p)
		}
	}
	// A detector with real signal separates well above chance.
	auc := AUC(curve)
	if math.IsNaN(auc) || auc < 0.7 {
		t.Fatalf("AUC = %v, want ≥ 0.7", auc)
	}
	if !math.IsNaN(AUC(nil)) {
		t.Fatal("empty AUC should be NaN")
	}
}
