package eval

import (
	"repro/internal/workload"
)

// DeploymentStats mirrors the paper's Table 3: the daily statistics the
// operations team saw during FUNNEL's one-week deployment, plus the
// precision of the delivered KPI changes as verified against ground
// truth (the role the operations team's manual verification plays in
// §5).
type DeploymentStats struct {
	// Changes is the number of assessed software changes.
	Changes int
	// ChangesWithImpact counts changes with at least one KPI change
	// attributed to them.
	ChangesWithImpact int
	// KPIs is the total number of monitored KPI series.
	KPIs int
	// KPIChanges is the number of delivered (KPI, change) attributions.
	KPIChanges int
	// TP and FP split the deliveries by ground truth.
	TP, FP int
}

// Precision returns TP/(TP+FP), or NaN with no deliveries.
func (d DeploymentStats) Precision() float64 {
	return ratio(float64(d.TP), float64(d.TP+d.FP))
}

// SimulateDeployment runs a method over every change of a scenario and
// accumulates the Table-3 statistics.
func SimulateDeployment(sc *workload.Scenario, m Method) (DeploymentStats, error) {
	stats := DeploymentStats{Changes: len(sc.Cases), KPIs: sc.Source.Len()}
	for _, cs := range sc.Cases {
		preds, err := m.AssessCase(sc, cs)
		if err != nil {
			return DeploymentStats{}, err
		}
		flagged := 0
		for key, pred := range preds {
			if !pred.Changed {
				continue
			}
			flagged++
			if cs.Truth[key].Changed {
				stats.TP++
			} else {
				stats.FP++
			}
		}
		if flagged > 0 {
			stats.ChangesWithImpact++
			stats.KPIChanges += flagged
		}
	}
	return stats, nil
}
