package eval

import (
	"sort"

	"repro/internal/detect"
	"repro/internal/funnel"
	"repro/internal/sst"
	"repro/internal/topo"
	"repro/internal/workload"
)

// FunnelMethod adapts the FUNNEL assessor (or its SkipDiD ablation,
// the "Improved SST" row of Table 1) to the evaluation driver.
type FunnelMethod struct {
	// Label is the report name ("FUNNEL", "ImprovedSST", ...).
	Label string
	// Config configures the assessor; metrics are filled in per
	// scenario by AssessCase.
	Config funnel.Config
}

// Name identifies the method.
func (m *FunnelMethod) Name() string { return m.Label }

// AssessCase runs the pipeline for one case.
func (m *FunnelMethod) AssessCase(sc *workload.Scenario, cs workload.Case) (map[topo.KPIKey]Prediction, error) {
	cfg := m.Config
	cfg.ServerMetrics = workload.ServerMetrics()
	cfg.InstanceMetrics = workload.InstanceMetrics()
	a, err := funnel.NewAssessor(sc.Source, sc.Topo, cfg)
	if err != nil {
		return nil, err
	}
	rep, err := a.Assess(cs.Change)
	if err != nil {
		return nil, err
	}
	out := make(map[topo.KPIKey]Prediction, len(rep.Assessments))
	for _, asmt := range rep.Assessments {
		p := Prediction{Changed: asmt.Verdict == funnel.ChangedBySoftware}
		if p.Changed {
			p.AvailableAt = asmt.Detection.AvailableAt
		}
		out[asmt.Key] = p
	}
	return out, nil
}

// BaselineMethod adapts a bare change scorer (CUSUM, MRLS, or any SST
// variant) to the evaluation driver. Baselines attribute every
// persistent detection near the change to the software change — they
// have no mechanism for excluding other factors (§1: "neither CUSUM and
// MRLS, nor the improved SST can exclude the KPI changes induced by
// other factors").
type BaselineMethod struct {
	Label  string
	Scorer sst.Scorer
	// Threshold is the detection threshold for this scorer.
	Threshold float64
	// Persistence is the run-length requirement in bins; 0 means the
	// 7-minute rule.
	Persistence int
	// WindowBins is the assessment half-window (0 = 60).
	WindowBins int
}

// Name identifies the method.
func (m *BaselineMethod) Name() string { return m.Label }

// AssessCase detects changes on every treated KPI of the case.
func (m *BaselineMethod) AssessCase(sc *workload.Scenario, cs workload.Case) (map[topo.KPIKey]Prediction, error) {
	w := m.WindowBins
	if w <= 0 {
		w = 60
	}
	det := detect.New(m.Scorer, m.Threshold)
	if m.Persistence > 0 {
		det.Persistence = m.Persistence
	}
	cfg := m.Scorer.Config()
	out := make(map[topo.KPIKey]Prediction, len(cs.Truth))
	for key := range cs.Truth {
		series, ok := sc.Source.Series(key)
		if !ok {
			continue
		}
		lo := cs.ChangeBin - w - cfg.PastSpan()
		if lo < 0 {
			lo = 0
		}
		hi := cs.ChangeBin + w + cfg.FutureSpan()
		if hi > series.Len() {
			hi = series.Len()
		}
		var pred Prediction
		for _, d := range det.Detect(series.Values[lo:hi]) {
			if d.End+lo >= cs.ChangeBin-2 {
				pred.Changed = true
				pred.AvailableAt = d.AvailableAt + lo
				break
			}
		}
		out[key] = pred
	}
	return out, nil
}

// CalibrateOnScenario derives a scorer threshold from the change-free
// (pre-change) stretches of a scenario: it pools scores over the six
// hours before each assessment window and returns the q-quantile ×
// margin, mirroring §4.1's "parameters ... set to the best for the
// corresponding algorithm's accuracy".
//
// metrics optionally restricts the calibration corpus to specific
// metric names. This matters for reproducing the baselines' operating
// points: MRLS, for instance, was evidently tuned on well-behaved data
// — its published Table 1 row shows near-perfect recall *and* a
// collapsed TNR on variable KPIs, which only a threshold blind to
// spiky calibration data produces.
func CalibrateOnScenario(sc *workload.Scenario, scorer sst.Scorer, maxSeries int, q, margin float64, metrics ...string) (float64, error) {
	allowed := map[string]bool{}
	for _, m := range metrics {
		allowed[m] = true
	}
	// The stretch must cover the scorer's own window requirement (WoW
	// needs at least a day of lag history) plus room to score.
	span := scorer.Config().PastSpan() + scorer.Config().FutureSpan() + 120
	if span < 360 {
		span = 360
	}
	var clean [][]float64
	for _, cs := range sc.Cases {
		// Sorted key order: the calibration corpus (first maxSeries
		// matches) must not depend on map iteration, or the derived
		// threshold — and every table built on it — loses determinism.
		keys := make([]topo.KPIKey, 0, len(cs.Truth))
		for key := range cs.Truth {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, key := range keys {
			if len(allowed) > 0 && !allowed[key.Metric] {
				continue
			}
			s, ok := sc.Source.Series(key)
			if !ok {
				continue
			}
			// The stretch well before the change carries no injected
			// effects: use the final pre-change hours.
			end := cs.ChangeBin - 120
			start := end - span
			if start < 0 {
				continue
			}
			clean = append(clean, s.Values[start:end])
			if len(clean) >= maxSeries {
				break
			}
		}
		if len(clean) >= maxSeries {
			break
		}
	}
	return detect.Calibrate(scorer, clean, q, margin)
}
