package linalg

import "fmt"

// SymOp is an implicit symmetric linear operator: Apply writes A·v into
// dst. dst and v never alias. It is the interface form of MatVec; using
// an interface on the hot path lets a reusable struct operator be passed
// to LanczosWS without allocating a closure per call.
type SymOp interface {
	Apply(dst, v []float64)
}

// Apply lets a MatVec function value be used wherever a SymOp is
// expected. Converting a func value to an interface does not allocate.
func (f MatVec) Apply(dst, v []float64) { f(dst, v) }

// HankelGram is a reusable implicit Gram operator C = H·Hᵀ for the
// Hankel trajectory matrix H of a series slice (the matrix Hankel would
// materialize). Apply evaluates C·v directly from the series via sliding
// dot products, so the ω×δ trajectory matrix never exists in memory —
// the "matrix compression" remark of §3.2.3: Lanczos only ever touches
// C through matrix–vector products.
//
// The zero value is ready for use after Reset. Reset retains the scratch
// buffer across calls, so a long-lived HankelGram performs no steady-state
// allocations; Apply never allocates.
//
// Arithmetic note: Apply accumulates terms in exactly the order the
// dense GramOp(Hankel(...)) path does (including skipping zero entries
// of v in the Hᵀ·v stage), so implicit and dense scores agree bit for
// bit — the equivalence the sst tests pin down.
type HankelGram struct {
	x            []float64
	lo           int // index in x of the first (oldest) window start
	omega, delta int
	tmp          []float64 // Hᵀ·v scratch, length delta
}

// Reset points the operator at the trajectory matrix of x whose δ
// windows of length ω end at position end−1 — the same geometry as
// Hankel(x, end, omega, delta). It panics on an out-of-range window and
// reuses the internal scratch when capacity allows.
func (h *HankelGram) Reset(x []float64, end, omega, delta int) {
	lo := end - delta - omega + 1
	if lo < 0 || end > len(x) {
		panic(fmt.Sprintf("linalg: hankel op out of range: end=%d omega=%d delta=%d len=%d", end, omega, delta, len(x)))
	}
	h.x, h.lo, h.omega, h.delta = x, lo, omega, delta
	if cap(h.tmp) < delta {
		h.tmp = make([]float64, delta)
	}
	h.tmp = h.tmp[:delta]
}

// Dims returns the operator's dimension ω (C is ω×ω).
func (h *HankelGram) Dims() int { return h.omega }

// Apply writes H·Hᵀ·v into dst (both length ω) without forming H:
// (Hᵀv)[c] and (H·t)[r] are sliding dot products against the series.
func (h *HankelGram) Apply(dst, v []float64) {
	x, lo := h.x, h.lo
	// tmp[c] = Σ_r x[lo+c+r]·v[r]  — column c of H is the window
	// starting at lo+c. Zero entries of v are skipped to mirror the
	// dense MulTVecTo term set exactly.
	for c := 0; c < h.delta; c++ {
		base := lo + c
		var s float64
		for r := 0; r < h.omega; r++ {
			if vr := v[r]; vr != 0 {
				s += x[base+r] * vr
			}
		}
		h.tmp[c] = s
	}
	// dst[r] = Σ_c x[lo+c+r]·tmp[c].
	for r := 0; r < h.omega; r++ {
		base := lo + r
		var s float64
		for c, tc := range h.tmp {
			s += x[base+c] * tc
		}
		dst[r] = s
	}
}

// RowSums writes H·1 — the row sums of the implicit trajectory matrix —
// into dst (length ω). IKA uses this as its deterministic Krylov start
// vector without materializing H or a ones vector.
func (h *HankelGram) RowSums(dst []float64) {
	x, lo := h.x, h.lo
	for r := 0; r < h.omega; r++ {
		base := lo + r
		var s float64
		for c := 0; c < h.delta; c++ {
			s += x[base+c]
		}
		dst[r] = s
	}
}

// HankelOp returns an implicit MatVec for H·Hᵀ where H is the Hankel
// trajectory matrix Hankel(x, end, omega, delta). The operator computes
// products directly from the series slice; the trajectory matrix is
// never materialized. The closure and its scratch are allocated once
// here — hot paths that need allocation-free reuse across windows should
// hold a HankelGram and Reset it instead.
func HankelOp(x []float64, end, omega, delta int) MatVec {
	h := &HankelGram{}
	h.Reset(x, end, omega, delta)
	return h.Apply
}
