package linalg

import (
	"math/rand"
	"testing"
)

// randSeries returns n pseudo-random points.
func randSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	return x
}

// The implicit operator must agree with the dense Hankel Gram path bit
// for bit: same sliding windows, same accumulation order.
func TestHankelGramMatchesDenseGram(t *testing.T) {
	x := randSeries(128, 1)
	cases := []struct{ end, omega, delta int }{
		{20, 9, 9},
		{40, 5, 9},
		{60, 9, 5},
		{128, 15, 15},
		{17, 9, 9}, // lo == 0 edge
		{3, 1, 3},
		{128, 1, 1},
	}
	for _, c := range cases {
		dense := GramOp(Hankel(x, c.end, c.omega, c.delta))
		var h HankelGram
		h.Reset(x, c.end, c.omega, c.delta)
		if h.Dims() != c.omega {
			t.Fatalf("Dims = %d, want %d", h.Dims(), c.omega)
		}
		v := randSeries(c.omega, int64(c.end))
		v[0] = 0 // exercise the zero-skip path
		want := make([]float64, c.omega)
		got := make([]float64, c.omega)
		dense(want, v)
		h.Apply(got, v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %+v: dst[%d] = %v, dense %v", c, i, got[i], want[i])
			}
		}
	}
}

// HankelOp is the closure form of the same operator.
func TestHankelOpMatchesDense(t *testing.T) {
	x := randSeries(64, 2)
	op := HankelOp(x, 34, 9, 9)
	dense := GramOp(Hankel(x, 34, 9, 9))
	v := randSeries(9, 3)
	got := make([]float64, 9)
	want := make([]float64, 9)
	op(got, v)
	dense(want, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dst[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

// RowSums must equal H·1 computed densely.
func TestHankelGramRowSums(t *testing.T) {
	x := randSeries(64, 4)
	hank := Hankel(x, 40, 9, 7)
	ones := make([]float64, 7)
	for i := range ones {
		ones[i] = 1
	}
	want := hank.MulVec(ones)
	var h HankelGram
	h.Reset(x, 40, 9, 7)
	got := make([]float64, 9)
	h.RowSums(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rowsum[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

// Reset must retarget a live operator, including to a smaller geometry,
// and reuse the scratch buffer.
func TestHankelGramReset(t *testing.T) {
	x := randSeries(128, 5)
	var h HankelGram
	h.Reset(x, 100, 15, 15)
	h.Reset(x, 30, 5, 7)
	dense := GramOp(Hankel(x, 30, 5, 7))
	v := randSeries(5, 6)
	got := make([]float64, 5)
	want := make([]float64, 5)
	h.Apply(got, v)
	dense(want, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after reset: dst[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

func TestHankelGramPanicsOutOfRange(t *testing.T) {
	x := randSeries(20, 7)
	for _, c := range []struct{ end, omega, delta int }{
		{10, 9, 9},   // lo < 0
		{21, 9, 9},   // end beyond series
		{20, 12, 12}, // windows longer than the available prefix
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reset(%+v) should panic", c)
				}
			}()
			var h HankelGram
			h.Reset(x, c.end, c.omega, c.delta)
		}()
	}
}

// Steady-state Apply, RowSums and Reset must not allocate.
func TestHankelGramZeroAlloc(t *testing.T) {
	x := randSeries(64, 8)
	var h HankelGram
	h.Reset(x, 34, 9, 9)
	v := randSeries(9, 9)
	dst := make([]float64, 9)
	allocs := testing.AllocsPerRun(100, func() {
		h.Reset(x, 40, 9, 9)
		h.Apply(dst, v)
		h.RowSums(dst)
	})
	if allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", allocs)
	}
}
