package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(12)
		n := 1 + rng.Intn(m)
		a := randMatrix(rng, m, n)
		qr, err := QR(a)
		if err != nil {
			t.Fatal(err)
		}
		if !qr.Q.Mul(qr.R).Equalish(a, 1e-10) {
			t.Fatalf("trial %d: QR != A", trial)
		}
		orthonormalColumns(t, qr.Q, 1e-10)
		// R upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestQRWideRejected(t *testing.T) {
	if _, err := QR(NewMatrix(2, 3)); err == nil {
		t.Fatal("wide QR should error")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: exact solve.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = a + b·t to noisy points; the normal-equation residual
	// must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(301))
	n := 50
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, float64(i))
		b[i] = 3 + 0.5*float64(i) + 0.01*rng.NormFloat64()
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 0.05 || math.Abs(x[1]-0.5) > 0.005 {
		t.Fatalf("fit = %v", x)
	}
	// Orthogonality of the residual: Aᵀ(b − Ax) ≈ 0.
	res := make([]float64, n)
	ax := a.MulVec(x)
	for i := range res {
		res[i] = b[i] - ax[i]
	}
	g := make([]float64, 2)
	a.MulTVecTo(g, res)
	if math.Abs(g[0]) > 1e-9 || math.Abs(g[1]) > 1e-7 {
		t.Fatalf("residual not orthogonal: %v", g)
	}
}

func TestSolveLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // rank 1
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient solve should error")
	}
	if _, err := SolveLeastSquares(NewMatrix(3, 2), []float64{0, 0, 0}); err == nil {
		t.Fatal("zero matrix should error")
	}
	if _, err := SolveLeastSquares(FromRows([][]float64{{1}}), []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}
