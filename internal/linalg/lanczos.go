package linalg

import (
	"fmt"
	"math"
)

// MatVec is an implicit symmetric linear operator: it writes A·v into
// dst. dst and v never alias.
type MatVec func(dst, v []float64)

// LanczosResult holds the k-step Lanczos tridiagonalization of a
// symmetric operator C with respect to a start vector: Qᵀ·C·Q = T where
// T is tridiagonal with diagonal Alpha and subdiagonal Beta, and the
// columns of the Krylov basis Q are orthonormal with q₁ equal to the
// normalized start vector.
type LanczosResult struct {
	Alpha []float64 // diagonal of T, length k
	Beta  []float64 // subdiagonal of T, length k−1
	Q     *Matrix   // n×k Krylov basis (column-major vectors), nil unless requested
	K     int       // achieved dimension (≤ requested; smaller on breakdown)
}

// Lanczos runs k steps of the Lanczos iteration for the implicit n×n
// symmetric operator apply, starting from start (which is copied, not
// modified). Full reorthogonalization is performed at every step — the
// matrices here are tiny (k = 5 in FUNNEL) so the O(nk²) cost is
// negligible and the numerical robustness matters more.
//
// If the Krylov space is exhausted early (beta underflow), the returned
// result has K < k. wantBasis controls whether Q is accumulated.
func Lanczos(apply MatVec, start []float64, k int, wantBasis bool) (LanczosResult, error) {
	n := len(start)
	if n == 0 {
		return LanczosResult{}, fmt.Errorf("linalg: empty start vector")
	}
	if k < 1 {
		return LanczosResult{}, fmt.Errorf("linalg: nonpositive Krylov dimension %d", k)
	}
	if k > n {
		k = n
	}

	q := make([][]float64, 0, k)
	q0 := make([]float64, n)
	copy(q0, start)
	if Normalize(q0) == 0 {
		return LanczosResult{}, fmt.Errorf("linalg: zero start vector")
	}
	q = append(q, q0)

	alpha := make([]float64, 0, k)
	beta := make([]float64, 0, k-1)
	w := make([]float64, n)

	for j := 0; j < k; j++ {
		apply(w, q[j])
		a := Dot(q[j], w)
		alpha = append(alpha, a)
		if j == k-1 {
			break
		}
		// w ← w − a·q_j − β_{j−1}·q_{j−1}
		Axpy(-a, q[j], w)
		if j > 0 {
			Axpy(-beta[j-1], q[j-1], w)
		}
		// Full reorthogonalization (twice is enough).
		for pass := 0; pass < 2; pass++ {
			for _, qi := range q {
				Axpy(-Dot(qi, w), qi, w)
			}
		}
		b := Norm2(w)
		if b < 1e-12 || math.IsNaN(b) {
			// Krylov space exhausted: T is effectively block-complete.
			break
		}
		beta = append(beta, b)
		qn := make([]float64, n)
		for i, wi := range w {
			qn[i] = wi / b
		}
		q = append(q, qn)
	}

	res := LanczosResult{Alpha: alpha, Beta: beta, K: len(alpha)}
	if wantBasis {
		res.Q = NewMatrix(n, len(q))
		for j, qj := range q {
			res.Q.SetCol(j, qj)
		}
	}
	return res, nil
}

// Hankel builds the trajectory (Hankel) matrix of the series x whose
// columns are the δ overlapping windows of length ω ending at position
// end−1: column c (0 ≤ c < δ) is x[end−δ−ω+1+c : end−δ+1+c].
// In the paper's notation (Eq. 1) this is B(t) = [q(t−δ), …, q(t−1)]
// with end = t. It panics if the series is too short.
func Hankel(x []float64, end, omega, delta int) *Matrix {
	lo := end - delta - omega + 1
	if lo < 0 || end > len(x) {
		panic(fmt.Sprintf("linalg: hankel out of range: end=%d omega=%d delta=%d len=%d", end, omega, delta, len(x)))
	}
	m := NewMatrix(omega, delta)
	for c := 0; c < delta; c++ {
		base := lo + c
		for r := 0; r < omega; r++ {
			m.Data[r*delta+c] = x[base+r]
		}
	}
	return m
}

// GramOp returns an implicit operator for C = B·Bᵀ, evaluated as
// B·(Bᵀ·v) without ever forming the ω×ω Gram matrix. This is the
// "implicit inner product calculation" of §3.2.3: Lanczos only ever
// touches C through matrix-vector products.
func GramOp(b *Matrix) MatVec {
	tmp := make([]float64, b.Cols)
	return func(dst, v []float64) {
		b.MulTVecTo(tmp, v)
		b.MulVecTo(dst, tmp)
	}
}
