package linalg

import (
	"fmt"
	"math"
)

// MatVec is an implicit symmetric linear operator: it writes A·v into
// dst. dst and v never alias.
type MatVec func(dst, v []float64)

// LanczosResult holds the k-step Lanczos tridiagonalization of a
// symmetric operator C with respect to a start vector: Qᵀ·C·Q = T where
// T is tridiagonal with diagonal Alpha and subdiagonal Beta, and the
// columns of the Krylov basis Q are orthonormal with q₁ equal to the
// normalized start vector.
type LanczosResult struct {
	Alpha []float64 // diagonal of T, length k
	Beta  []float64 // subdiagonal of T, length k−1
	Q     *Matrix   // n×k Krylov basis (column-major vectors), nil unless requested
	K     int       // achieved dimension (≤ requested; smaller on breakdown)
}

// LanczosWorkspace holds the scratch buffers LanczosWS needs: the
// Krylov basis vectors, the working vector, the alpha/beta recurrence
// coefficients and the optional basis matrix. The zero value is ready
// for use; buffers grow on demand and are retained across calls, so a
// long-lived workspace makes repeated iterations allocation-free.
//
// A workspace is not safe for concurrent use, and the slices/matrix
// inside a LanczosResult produced with it remain valid only until the
// next LanczosWS call with the same workspace.
type LanczosWorkspace struct {
	alpha, beta []float64
	qbuf        []float64 // k row-contiguous basis vectors of length n
	w           []float64
	qmat        Matrix // n×k column-major view handed out as Result.Q
}

// ensure sizes the buffers for an n-dimensional operator and k steps.
func (ws *LanczosWorkspace) ensure(n, k int) {
	if cap(ws.alpha) < k {
		ws.alpha = make([]float64, k)
	}
	if cap(ws.beta) < k {
		ws.beta = make([]float64, k)
	}
	if cap(ws.qbuf) < k*n {
		ws.qbuf = make([]float64, k*n)
	}
	if cap(ws.w) < n {
		ws.w = make([]float64, n)
	}
	ws.w = ws.w[:n]
}

// Lanczos runs k steps of the Lanczos iteration for the implicit n×n
// symmetric operator apply, starting from start (which is copied, not
// modified). Full reorthogonalization is performed at every step — the
// matrices here are tiny (k = 5 in FUNNEL) so the O(nk²) cost is
// negligible and the numerical robustness matters more.
//
// If the Krylov space is exhausted early (beta underflow), the returned
// result has K < k. wantBasis controls whether Q is accumulated.
func Lanczos(apply MatVec, start []float64, k int, wantBasis bool) (LanczosResult, error) {
	ws := &LanczosWorkspace{}
	return LanczosWS(ws, apply, start, k, wantBasis)
}

// LanczosWS is Lanczos with every buffer drawn from ws, performing no
// allocation once the workspace has warmed up. The returned result
// aliases ws-owned memory; it is invalidated by the next call with the
// same workspace.
func LanczosWS(ws *LanczosWorkspace, op SymOp, start []float64, k int, wantBasis bool) (LanczosResult, error) {
	n := len(start)
	if n == 0 {
		return LanczosResult{}, fmt.Errorf("linalg: empty start vector")
	}
	if k < 1 {
		return LanczosResult{}, fmt.Errorf("linalg: nonpositive Krylov dimension %d", k)
	}
	if k > n {
		k = n
	}
	ws.ensure(n, k)

	q0 := ws.qbuf[:n]
	copy(q0, start)
	if Normalize(q0) == 0 {
		return LanczosResult{}, fmt.Errorf("linalg: zero start vector")
	}
	nq := 1 // basis vectors built so far

	na, nb := 0, 0 // alphas and betas emitted
	w := ws.w

	for j := 0; j < k; j++ {
		qj := ws.qbuf[j*n : (j+1)*n]
		op.Apply(w, qj)
		a := Dot(qj, w)
		ws.alpha[na] = a
		na++
		if j == k-1 {
			break
		}
		// w ← w − a·q_j − β_{j−1}·q_{j−1}
		Axpy(-a, qj, w)
		if j > 0 {
			Axpy(-ws.beta[j-1], ws.qbuf[(j-1)*n:j*n], w)
		}
		// Full reorthogonalization (twice is enough).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < nq; i++ {
				qi := ws.qbuf[i*n : (i+1)*n]
				Axpy(-Dot(qi, w), qi, w)
			}
		}
		b := Norm2(w)
		if b < 1e-12 || math.IsNaN(b) {
			// Krylov space exhausted: T is effectively block-complete.
			break
		}
		ws.beta[nb] = b
		nb++
		qn := ws.qbuf[(j+1)*n : (j+2)*n]
		for i, wi := range w {
			qn[i] = wi / b
		}
		nq++
	}

	res := LanczosResult{Alpha: ws.alpha[:na], Beta: ws.beta[:nb], K: na}
	if wantBasis {
		if cap(ws.qmat.Data) < n*nq {
			ws.qmat.Data = make([]float64, n*nq)
		}
		ws.qmat.Rows, ws.qmat.Cols = n, nq
		ws.qmat.Data = ws.qmat.Data[:n*nq]
		for j := 0; j < nq; j++ {
			ws.qmat.SetCol(j, ws.qbuf[j*n:(j+1)*n])
		}
		res.Q = &ws.qmat
	}
	return res, nil
}

// Hankel builds the trajectory (Hankel) matrix of the series x whose
// columns are the δ overlapping windows of length ω ending at position
// end−1: column c (0 ≤ c < δ) is x[end−δ−ω+1+c : end−δ+1+c].
// In the paper's notation (Eq. 1) this is B(t) = [q(t−δ), …, q(t−1)]
// with end = t. It panics if the series is too short.
func Hankel(x []float64, end, omega, delta int) *Matrix {
	lo := end - delta - omega + 1
	if lo < 0 || end > len(x) {
		panic(fmt.Sprintf("linalg: hankel out of range: end=%d omega=%d delta=%d len=%d", end, omega, delta, len(x)))
	}
	m := NewMatrix(omega, delta)
	for c := 0; c < delta; c++ {
		base := lo + c
		for r := 0; r < omega; r++ {
			m.Data[r*delta+c] = x[base+r]
		}
	}
	return m
}

// HankelInto is Hankel with the trajectory matrix written into m
// (reshaped to ω×δ), so pooled callers build windows without
// allocating. Values are bit-identical to Hankel's.
func HankelInto(m *Matrix, x []float64, end, omega, delta int) {
	lo := end - delta - omega + 1
	if lo < 0 || end > len(x) {
		panic(fmt.Sprintf("linalg: hankel out of range: end=%d omega=%d delta=%d len=%d", end, omega, delta, len(x)))
	}
	m.Reshape(omega, delta)
	for c := 0; c < delta; c++ {
		base := lo + c
		for r := 0; r < omega; r++ {
			m.Data[r*delta+c] = x[base+r]
		}
	}
}

// GramOp returns an implicit operator for C = B·Bᵀ, evaluated as
// B·(Bᵀ·v) without ever forming the ω×ω Gram matrix. This is the
// "implicit inner product calculation" of §3.2.3: Lanczos only ever
// touches C through matrix-vector products.
func GramOp(b *Matrix) MatVec {
	tmp := make([]float64, b.Cols)
	return func(dst, v []float64) {
		b.MulTVecTo(tmp, v)
		b.MulVecTo(dst, tmp)
	}
}
