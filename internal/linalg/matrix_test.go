package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.Data[5] != 7 {
		t.Fatal("At/Set row-major layout broken")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %+v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows should panic")
		}
	}()
	FromRows([][]float64{{1}, {2, 3}})
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 4, 7)
	if !m.T().T().Equalish(m, 0) {
		t.Fatal("transpose is not an involution")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 5, 5)
	if !m.Mul(Identity(5)).Equalish(m, 1e-14) || !Identity(5).Mul(m).Equalish(m, 1e-14) {
		t.Fatal("identity multiplication is not neutral")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !a.Mul(b).Equalish(want, 0) {
		t.Fatalf("Mul = %v", a.Mul(b))
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 6, 4)
	v := make([]float64, 4)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	vm := NewMatrix(4, 1)
	vm.SetCol(0, v)
	got := a.MulVec(v)
	want := a.Mul(vm)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-13 {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
}

func TestMulTVecMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 6, 4)
	v := make([]float64, 6)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	dst := make([]float64, 4)
	a.MulTVecTo(dst, v)
	want := a.T().MulVec(v)
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-13 {
			t.Fatalf("MulTVecTo mismatch at %d: %v vs %v", i, dst[i], want[i])
		}
	}
}

func TestColSetCol(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	got := m.Col(1)
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("Col = %v", got)
		}
	}
}

func TestDotNormAxpy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("Norm2(3,4) != 5")
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	for i, want := range []float64{3, 5, 7} {
		if y[i] != want {
			t.Fatalf("Axpy = %v", y)
		}
	}
}

func TestNorm2Overflow(t *testing.T) {
	v := []float64{1e200, 1e200}
	if got := Norm2(v); math.IsInf(got, 0) || math.Abs(got-1e200*math.Sqrt2) > 1e186 {
		t.Fatalf("Norm2 overflow-unsafe: %v", got)
	}
	if Norm2(nil) != 0 || Norm2([]float64{0, 0}) != 0 {
		t.Fatal("Norm2 of zero vector should be 0")
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if n != 5 || math.Abs(Norm2(v)-1) > 1e-15 {
		t.Fatalf("Normalize: n=%v v=%v", n, v)
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		return a.Mul(b).T().Equalish(b.T().Mul(a.T()), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy–Schwarz |⟨a,b⟩| ≤ ‖a‖‖b‖.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(raw []float64) bool {
		a := make([]float64, 0, len(raw)/2)
		b := make([]float64, 0, len(raw)/2)
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
			if i%2 == 0 {
				a = append(a, x)
			} else {
				b = append(b, x)
			}
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
