package linalg

import (
	"testing"
)

// The first-row eigensolver must agree with the full solve bit for bit:
// same eigenvalues, and first[j] equal to row 0 of the eigenvector
// matrix, including on tied eigenvalues where only a stable order keeps
// the two aligned.
func TestTridiagEigFirstRowMatchesFull(t *testing.T) {
	cases := []struct {
		name string
		d, e []float64
	}{
		{"order-1", []float64{3}, nil},
		{"plain", []float64{4, 3, 7, 1, 5}, []float64{1, 0.5, 2, 0.25}},
		{"ties", []float64{2, 2, 2}, []float64{0, 0}},
		{"random-8", randSeries(8, 80), randSeries(7, 81)},
		{"lanczos-like", []float64{9, 5, 2, 0.5, 0.1}, []float64{3, 1, 0.3, 0.01}},
	}
	var full, fr EigWorkspace
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantVals, wantVecs, err := TridiagEigWS(&full, c.d, c.e)
			if err != nil {
				t.Fatal(err)
			}
			vals, first, err := TridiagEigFirstRowWS(&fr, c.d, c.e)
			if err != nil {
				t.Fatal(err)
			}
			for j := range wantVals {
				if vals[j] != wantVals[j] {
					t.Fatalf("val[%d] = %v, want %v", j, vals[j], wantVals[j])
				}
				if first[j] != wantVecs.At(0, j) {
					t.Fatalf("first[%d] = %v, want %v", j, first[j], wantVecs.At(0, j))
				}
			}
		})
	}
}

func TestTridiagEigFirstRowEmptyAndMismatch(t *testing.T) {
	var ws EigWorkspace
	vals, first, err := TridiagEigFirstRowWS(&ws, nil, nil)
	if err != nil || vals != nil || first != nil {
		t.Fatalf("empty input: vals=%v first=%v err=%v", vals, first, err)
	}
	if _, _, err := TridiagEigFirstRowWS(&ws, []float64{1, 2}, []float64{3, 4}); err == nil {
		t.Fatal("mismatched subdiagonal should error")
	}
}

func TestTridiagEigFirstRowZeroAlloc(t *testing.T) {
	d := randSeries(5, 82)
	e := randSeries(4, 83)
	var ws EigWorkspace
	if _, _, err := TridiagEigFirstRowWS(&ws, d, e); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := TridiagEigFirstRowWS(&ws, d, e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", allocs)
	}
}

// MulInto must reproduce Mul bit for bit, including the zero-skip path.
func TestMulIntoMatchesMul(t *testing.T) {
	a := &Matrix{Rows: 4, Cols: 6, Data: randSeries(24, 84)}
	b := &Matrix{Rows: 6, Cols: 3, Data: randSeries(18, 85)}
	a.Data[1] = 0 // exercise the skip
	a.Data[13] = 0
	want := a.Mul(b)
	var dst Matrix
	MulInto(&dst, a, b)
	if !dst.Equalish(want, 0) {
		t.Fatal("MulInto differs from Mul")
	}
	// Reuse with a different, larger shape.
	a2 := &Matrix{Rows: 7, Cols: 2, Data: randSeries(14, 86)}
	b2 := &Matrix{Rows: 2, Cols: 7, Data: randSeries(14, 87)}
	MulInto(&dst, a2, b2)
	if !dst.Equalish(a2.Mul(b2), 0) {
		t.Fatal("reused MulInto differs from Mul")
	}
}

// GramSelfInto must reproduce a.Mul(a.T()) bit for bit.
func TestGramSelfIntoMatchesMulT(t *testing.T) {
	a := &Matrix{Rows: 5, Cols: 9, Data: randSeries(45, 88)}
	a.Data[7] = 0
	want := a.Mul(a.T())
	var dst Matrix
	GramSelfInto(&dst, a)
	if !dst.Equalish(want, 0) {
		t.Fatal("GramSelfInto differs from Mul(T())")
	}
}

// HankelInto must reproduce Hankel bit for bit and reuse its buffer.
func TestHankelIntoMatchesHankel(t *testing.T) {
	x := randSeries(64, 89)
	var m Matrix
	for _, c := range []struct{ end, omega, delta int }{{34, 9, 9}, {20, 5, 7}, {64, 11, 3}} {
		want := Hankel(x, c.end, c.omega, c.delta)
		HankelInto(&m, x, c.end, c.omega, c.delta)
		if !m.Equalish(want, 0) {
			t.Fatalf("case %+v: HankelInto differs from Hankel", c)
		}
	}
	data := &m.Data[0]
	HankelInto(&m, x, 30, 5, 7)
	if data != &m.Data[0] {
		t.Fatal("HankelInto reallocated a sufficient buffer")
	}
}

// SVDWS shares svdTall with SVD, so the results must be identical; this
// guards the two entry points against future divergence, including the
// wide-matrix transpose path and workspace reuse across shapes.
func TestSVDWSMatchesSVD(t *testing.T) {
	var ws SVDWorkspace
	shapes := []struct{ m, n int }{{9, 5}, {5, 9}, {6, 6}, {9, 5}, {3, 1}}
	for i, sh := range shapes {
		a := &Matrix{Rows: sh.m, Cols: sh.n, Data: randSeries(sh.m*sh.n, int64(90+i))}
		want := SVD(a)
		got := SVDWS(&ws, a)
		if len(got.S) != len(want.S) {
			t.Fatalf("shape %+v: rank %d, want %d", sh, len(got.S), len(want.S))
		}
		for j := range want.S {
			if got.S[j] != want.S[j] {
				t.Fatalf("shape %+v: s[%d] = %v, want %v", sh, j, got.S[j], want.S[j])
			}
		}
		if !got.U.Equalish(want.U, 0) || !got.V.Equalish(want.V, 0) {
			t.Fatalf("shape %+v: singular vectors differ", sh)
		}
		// Reconstruction sanity: A ≈ U·diag(S)·Vᵀ.
		for r := 0; r < sh.m; r++ {
			for c := 0; c < sh.n; c++ {
				var acc float64
				for k := range got.S {
					acc += got.U.At(r, k) * got.S[k] * got.V.At(c, k)
				}
				closeRel(t, acc, a.At(r, c), 1e-10, "reconstruction")
			}
		}
	}
}

func TestSVDWSZeroAlloc(t *testing.T) {
	a := &Matrix{Rows: 9, Cols: 5, Data: randSeries(45, 95)}
	var ws SVDWorkspace
	SVDWS(&ws, a)
	allocs := testing.AllocsPerRun(50, func() { SVDWS(&ws, a) })
	if allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", allocs)
	}
}

func TestTopLeftSingularVectorsWSMatches(t *testing.T) {
	a := &Matrix{Rows: 9, Cols: 5, Data: randSeries(45, 96)}
	want := TopLeftSingularVectors(a, 3)
	var ws SVDWorkspace
	var dst Matrix
	TopLeftSingularVectorsWS(&ws, &dst, a, 3)
	if !dst.Equalish(want, 0) {
		t.Fatal("WS top singular vectors differ")
	}
	allocs := testing.AllocsPerRun(50, func() { TopLeftSingularVectorsWS(&ws, &dst, a, 3) })
	if allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", allocs)
	}
}

// SymEigWS shares its reduction and QL iteration with SymEig; results
// must match bit for bit and satisfy A·v = λ·v.
func TestSymEigWSMatchesSymEig(t *testing.T) {
	var ws EigWorkspace
	for _, n := range []int{1, 4, 7, 4} {
		b := &Matrix{Rows: n, Cols: n + 2, Data: randSeries(n*(n+2), int64(100+n))}
		a := b.Mul(b.T()) // SPD
		wantVals, wantVecs, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		vals, vecs, err := SymEigWS(&ws, a)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantVals {
			if vals[j] != wantVals[j] {
				t.Fatalf("n=%d: val[%d] = %v, want %v", n, j, vals[j], wantVals[j])
			}
		}
		if !vecs.Equalish(wantVecs, 0) {
			t.Fatalf("n=%d: eigenvectors differ", n)
		}
		// Residual check against the original matrix.
		av := make([]float64, n)
		for j := 0; j < n; j++ {
			col := vecs.Col(j)
			a.MulVecTo(av, col)
			for i := 0; i < n; i++ {
				closeRel(t, av[i], vals[j]*col[i], 1e-8, "SymEig residual")
			}
		}
	}
}

func TestSymEigWSZeroAlloc(t *testing.T) {
	b := &Matrix{Rows: 5, Cols: 8, Data: randSeries(40, 110)}
	a := b.Mul(b.T())
	var ws EigWorkspace
	if _, _, err := SymEigWS(&ws, a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := SymEigWS(&ws, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", allocs)
	}
}

func TestReshapeReusesCapacity(t *testing.T) {
	var m Matrix
	m.Reshape(4, 6)
	if m.Rows != 4 || m.Cols != 6 || len(m.Data) != 24 {
		t.Fatalf("Reshape gave %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	p := &m.Data[0]
	m.Reshape(3, 5)
	if &m.Data[0] != p {
		t.Fatal("shrinking Reshape reallocated")
	}
	m.Reshape(10, 10)
	if len(m.Data) != 100 {
		t.Fatal("growing Reshape did not resize")
	}
}
