package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// reconstruct computes U·diag(S)·Vᵀ from an SVDResult.
func reconstruct(r SVDResult) *Matrix {
	us := r.U.Clone()
	for j, s := range r.S {
		for i := 0; i < us.Rows; i++ {
			us.Data[i*us.Cols+j] *= s
		}
	}
	return us.Mul(r.V.T())
}

// orthonormalColumns checks that the columns of m are orthonormal,
// skipping columns that are entirely zero (rank-deficient fill).
func orthonormalColumns(t *testing.T, m *Matrix, tol float64) {
	t.Helper()
	for j := 0; j < m.Cols; j++ {
		cj := m.Col(j)
		nj := Norm2(cj)
		if nj == 0 {
			continue
		}
		if math.Abs(nj-1) > tol {
			t.Fatalf("column %d norm = %v", j, nj)
		}
		for k := j + 1; k < m.Cols; k++ {
			ck := m.Col(k)
			if Norm2(ck) == 0 {
				continue
			}
			if d := math.Abs(Dot(cj, ck)); d > tol {
				t.Fatalf("columns %d,%d not orthogonal: %v", j, k, d)
			}
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -2}})
	r := SVD(a)
	if math.Abs(r.S[0]-3) > 1e-12 || math.Abs(r.S[1]-2) > 1e-12 {
		t.Fatalf("S = %v, want [3 2]", r.S)
	}
	if !reconstruct(r).Equalish(a, 1e-12) {
		t.Fatal("reconstruction failed")
	}
}

func TestSVDReconstructionTall(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		m, n := 3+rng.Intn(15), 1+rng.Intn(8)
		if m < n {
			m, n = n, m
		}
		a := randMatrix(rng, m, n)
		r := SVD(a)
		if !reconstruct(r).Equalish(a, 1e-9) {
			t.Fatalf("trial %d: USVᵀ != A", trial)
		}
		orthonormalColumns(t, r.U, 1e-9)
		orthonormalColumns(t, r.V, 1e-9)
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(r.S))) {
			t.Fatalf("singular values not descending: %v", r.S)
		}
		for _, s := range r.S {
			if s < 0 {
				t.Fatalf("negative singular value: %v", r.S)
			}
		}
	}
}

func TestSVDWide(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randMatrix(rng, 3, 8)
	r := SVD(a)
	if r.U.Rows != 3 || r.V.Rows != 8 || len(r.S) != 3 {
		t.Fatalf("thin dimensions wrong: U %dx%d V %dx%d S %d",
			r.U.Rows, r.U.Cols, r.V.Rows, r.V.Cols, len(r.S))
	}
	if !reconstruct(r).Equalish(a, 1e-9) {
		t.Fatal("wide reconstruction failed")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value must vanish.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	r := SVD(a)
	if r.S[1] > 1e-10 {
		t.Fatalf("rank-1 matrix has σ₂ = %v", r.S[1])
	}
	if !reconstruct(r).Equalish(a, 1e-9) {
		t.Fatal("rank-deficient reconstruction failed")
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := NewMatrix(4, 3)
	r := SVD(a)
	for _, s := range r.S {
		if s != 0 {
			t.Fatalf("zero matrix S = %v", r.S)
		}
	}
}

func TestSVDSingularValuesMatchEigen(t *testing.T) {
	// σᵢ² must equal the eigenvalues of AᵀA.
	rng := rand.New(rand.NewSource(22))
	a := randMatrix(rng, 10, 4)
	r := SVD(a)
	gram := a.T().Mul(a)
	vals, _, err := SymEig(gram)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.S {
		if math.Abs(r.S[i]*r.S[i]-vals[i]) > 1e-8*(1+vals[i]) {
			t.Fatalf("σ²=%v eig=%v at %d", r.S[i]*r.S[i], vals[i], i)
		}
	}
}

func TestSVDFrobeniusInvariant(t *testing.T) {
	// ‖A‖_F² = Σσᵢ².
	rng := rand.New(rand.NewSource(23))
	a := randMatrix(rng, 7, 5)
	var fro float64
	for _, x := range a.Data {
		fro += x * x
	}
	var ssq float64
	for _, s := range SVD(a).S {
		ssq += s * s
	}
	if math.Abs(fro-ssq) > 1e-9*(1+fro) {
		t.Fatalf("Frobenius %v != Σσ² %v", fro, ssq)
	}
}

func TestTopLeftSingularVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randMatrix(rng, 9, 6)
	u2 := TopLeftSingularVectors(a, 2)
	if u2.Rows != 9 || u2.Cols != 2 {
		t.Fatalf("shape %dx%d", u2.Rows, u2.Cols)
	}
	orthonormalColumns(t, u2, 1e-9)
	full := SVD(a)
	for j := 0; j < 2; j++ {
		// Columns may differ by sign.
		c, f := u2.Col(j), full.U.Col(j)
		d1, d2 := 0.0, 0.0
		for i := range c {
			d1 += (c[i] - f[i]) * (c[i] - f[i])
			d2 += (c[i] + f[i]) * (c[i] + f[i])
		}
		if math.Min(d1, d2) > 1e-16 {
			t.Fatalf("top vector %d mismatch", j)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k > rank bound should panic")
		}
	}()
	TopLeftSingularVectors(a, 7)
}
