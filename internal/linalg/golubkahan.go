package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SVDGolubKahan computes a thin singular value decomposition using
// Householder bidiagonalization followed by implicit-shift QR on the
// bidiagonal (the classic Golub–Reinsch algorithm). For matrices beyond
// roughly 20×20 it is substantially faster than the one-sided Jacobi
// SVD, at slightly lower relative accuracy on tiny singular values;
// BenchmarkSVDBackends quantifies the trade. Both backends satisfy the
// same contract: A = U·diag(S)·Vᵀ with S descending.
//
// It returns an error if the QR iteration fails to converge (which, on
// finite input, indicates a bug rather than a property of the matrix).
func SVDGolubKahan(a *Matrix) (SVDResult, error) {
	m, n := a.Rows, a.Cols
	if m >= n {
		return gkTall(a.Clone())
	}
	r, err := gkTall(a.T())
	if err != nil {
		return SVDResult{}, err
	}
	return SVDResult{U: r.V, S: r.S, V: r.U}, nil
}

// gkMaxIter bounds QR iterations per singular value.
const gkMaxIter = 60

// gkTall runs Golub–Reinsch on a tall (m ≥ n) matrix, destroying u.
func gkTall(u *Matrix) (SVDResult, error) {
	m, n := u.Rows, u.Cols
	if n == 0 {
		return SVDResult{U: NewMatrix(m, 0), S: nil, V: NewMatrix(0, 0)}, nil
	}
	w := make([]float64, n)
	rv1 := make([]float64, n)
	v := NewMatrix(n, n)

	var g, scale, anorm float64

	// Householder reduction to bidiagonal form.
	for i := 0; i < n; i++ {
		l := i + 1
		rv1[i] = scale * g
		g, scale = 0, 0
		if i < m {
			for k := i; k < m; k++ {
				scale += math.Abs(u.At(k, i))
			}
			if scale != 0 {
				var s float64
				for k := i; k < m; k++ {
					u.Set(k, i, u.At(k, i)/scale)
					s += u.At(k, i) * u.At(k, i)
				}
				f := u.At(i, i)
				g = -math.Copysign(math.Sqrt(s), f)
				h := f*g - s
				u.Set(i, i, f-g)
				for j := l; j < n; j++ {
					var sum float64
					for k := i; k < m; k++ {
						sum += u.At(k, i) * u.At(k, j)
					}
					f := sum / h
					for k := i; k < m; k++ {
						u.Set(k, j, u.At(k, j)+f*u.At(k, i))
					}
				}
				for k := i; k < m; k++ {
					u.Set(k, i, u.At(k, i)*scale)
				}
			}
		}
		w[i] = scale * g
		g, scale = 0, 0
		if i < m && i != n-1 {
			for k := l; k < n; k++ {
				scale += math.Abs(u.At(i, k))
			}
			if scale != 0 {
				var s float64
				for k := l; k < n; k++ {
					u.Set(i, k, u.At(i, k)/scale)
					s += u.At(i, k) * u.At(i, k)
				}
				f := u.At(i, l)
				g = -math.Copysign(math.Sqrt(s), f)
				h := f*g - s
				u.Set(i, l, f-g)
				for k := l; k < n; k++ {
					rv1[k] = u.At(i, k) / h
				}
				for j := l; j < m; j++ {
					var sum float64
					for k := l; k < n; k++ {
						sum += u.At(j, k) * u.At(i, k)
					}
					for k := l; k < n; k++ {
						u.Set(j, k, u.At(j, k)+sum*rv1[k])
					}
				}
				for k := l; k < n; k++ {
					u.Set(i, k, u.At(i, k)*scale)
				}
			}
		}
		anorm = math.Max(anorm, math.Abs(w[i])+math.Abs(rv1[i]))
	}

	// Accumulation of right-hand transformations.
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		if i < n-1 {
			if g != 0 {
				for j := l; j < n; j++ {
					// Double division avoids possible underflow.
					v.Set(j, i, (u.At(i, j)/u.At(i, l))/g)
				}
				for j := l; j < n; j++ {
					var s float64
					for k := l; k < n; k++ {
						s += u.At(i, k) * v.At(k, j)
					}
					for k := l; k < n; k++ {
						v.Set(k, j, v.At(k, j)+s*v.At(k, i))
					}
				}
			}
			for j := l; j < n; j++ {
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		}
		v.Set(i, i, 1)
		g = rv1[i]
	}

	// Accumulation of left-hand transformations.
	for i := min(m, n) - 1; i >= 0; i-- {
		l := i + 1
		g = w[i]
		for j := l; j < n; j++ {
			u.Set(i, j, 0)
		}
		if g != 0 {
			g = 1 / g
			for j := l; j < n; j++ {
				var s float64
				for k := l; k < m; k++ {
					s += u.At(k, i) * u.At(k, j)
				}
				f := (s / u.At(i, i)) * g
				for k := i; k < m; k++ {
					u.Set(k, j, u.At(k, j)+f*u.At(k, i))
				}
			}
			for j := i; j < m; j++ {
				u.Set(j, i, u.At(j, i)*g)
			}
		} else {
			for j := i; j < m; j++ {
				u.Set(j, i, 0)
			}
		}
		u.Set(i, i, u.At(i, i)+1)
	}

	// Diagonalization of the bidiagonal form.
	for k := n - 1; k >= 0; k-- {
		for its := 0; ; its++ {
			if its == gkMaxIter {
				return SVDResult{}, fmt.Errorf("linalg: Golub–Kahan QR failed to converge at index %d", k)
			}
			flag := true
			var l, nm int
			for l = k; l >= 0; l-- {
				nm = l - 1
				if math.Abs(rv1[l])+anorm == anorm {
					flag = false
					break
				}
				if math.Abs(w[nm])+anorm == anorm {
					break
				}
			}
			if flag {
				// Cancellation of rv1[l] when w[nm] is negligible.
				c, s := 0.0, 1.0
				for i := l; i <= k; i++ {
					f := s * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f)+anorm == anorm {
						break
					}
					g := w[i]
					h := hypot(f, g)
					w[i] = h
					h = 1 / h
					c = g * h
					s = -f * h
					for j := 0; j < m; j++ {
						y := u.At(j, nm)
						z := u.At(j, i)
						u.Set(j, nm, y*c+z*s)
						u.Set(j, i, z*c-y*s)
					}
				}
			}
			z := w[k]
			if l == k {
				// Convergence; make the singular value non-negative.
				if z < 0 {
					w[k] = -z
					for j := 0; j < n; j++ {
						v.Set(j, k, -v.At(j, k))
					}
				}
				break
			}
			// Shift from the bottom 2×2 minor.
			x := w[l]
			nm = k - 1
			y := w[nm]
			g := rv1[nm]
			h := rv1[k]
			f := ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = hypot(f, 1)
			f = ((x-z)*(x+z) + h*((y/(f+math.Copysign(g, f)))-h)) / x
			// Next QR transformation.
			c, s := 1.0, 1.0
			for j := l; j <= nm; j++ {
				i := j + 1
				g := rv1[i]
				y := w[i]
				h := s * g
				g = c * g
				z := hypot(f, h)
				rv1[j] = z
				c = f / z
				s = h / z
				f = x*c + g*s
				g = g*c - x*s
				h = y * s
				y *= c
				for jj := 0; jj < n; jj++ {
					xv := v.At(jj, j)
					zv := v.At(jj, i)
					v.Set(jj, j, xv*c+zv*s)
					v.Set(jj, i, zv*c-xv*s)
				}
				z = hypot(f, h)
				w[j] = z
				if z != 0 {
					z = 1 / z
					c = f * z
					s = h * z
				}
				f = c*g + s*y
				x = c*y - s*g
				for jj := 0; jj < m; jj++ {
					yu := u.At(jj, j)
					zu := u.At(jj, i)
					u.Set(jj, j, yu*c+zu*s)
					u.Set(jj, i, zu*c-yu*s)
				}
			}
			rv1[l] = 0
			rv1[k] = f
			w[k] = x
		}
	}

	// Sort singular values descending, permuting U and V columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	ss := make([]float64, n)
	us := NewMatrix(m, n)
	vs := NewMatrix(n, n)
	for dst, src := range idx {
		ss[dst] = w[src]
		for i := 0; i < m; i++ {
			us.Data[i*n+dst] = u.Data[i*n+src]
		}
		for i := 0; i < n; i++ {
			vs.Data[i*n+dst] = v.Data[i*n+src]
		}
	}
	return SVDResult{U: us, S: ss, V: vs}, nil
}
