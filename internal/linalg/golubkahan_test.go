package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestGolubKahanReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 25; trial++ {
		m, n := 1+rng.Intn(20), 1+rng.Intn(20)
		a := randMatrix(rng, m, n)
		r, err := SVDGolubKahan(a)
		if err != nil {
			t.Fatal(err)
		}
		if !reconstruct(r).Equalish(a, 1e-8) {
			t.Fatalf("trial %d (%dx%d): USVᵀ != A", trial, m, n)
		}
		orthonormalColumns(t, r.U, 1e-8)
		orthonormalColumns(t, r.V, 1e-8)
		for i := 1; i < len(r.S); i++ {
			if r.S[i] > r.S[i-1]+1e-12 {
				t.Fatalf("S not descending: %v", r.S)
			}
			if r.S[i] < 0 {
				t.Fatalf("negative singular value: %v", r.S)
			}
		}
	}
}

func TestGolubKahanAgreesWithJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 20; trial++ {
		m, n := 2+rng.Intn(15), 2+rng.Intn(15)
		a := randMatrix(rng, m, n)
		gk, err := SVDGolubKahan(a)
		if err != nil {
			t.Fatal(err)
		}
		jc := SVD(a)
		if len(gk.S) != len(jc.S) {
			t.Fatalf("rank mismatch %d vs %d", len(gk.S), len(jc.S))
		}
		for i := range gk.S {
			if math.Abs(gk.S[i]-jc.S[i]) > 1e-8*(1+jc.S[i]) {
				t.Fatalf("σ[%d]: GK %v vs Jacobi %v", i, gk.S[i], jc.S[i])
			}
		}
	}
}

func TestGolubKahanKnownMatrices(t *testing.T) {
	// Diagonal.
	r, err := SVDGolubKahan(FromRows([][]float64{{3, 0}, {0, -2}}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.S[0]-3) > 1e-12 || math.Abs(r.S[1]-2) > 1e-12 {
		t.Fatalf("S = %v", r.S)
	}
	// Rank-1.
	r, err = SVDGolubKahan(FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}))
	if err != nil {
		t.Fatal(err)
	}
	if r.S[1] > 1e-10 {
		t.Fatalf("σ₂ = %v for rank-1 input", r.S[1])
	}
	// Zero matrix.
	r, err = SVDGolubKahan(NewMatrix(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.S {
		if s != 0 {
			t.Fatalf("zero matrix S = %v", r.S)
		}
	}
	// Empty.
	if _, err := SVDGolubKahan(NewMatrix(3, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestGolubKahanWide(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	a := randMatrix(rng, 3, 9)
	r, err := SVDGolubKahan(a)
	if err != nil {
		t.Fatal(err)
	}
	if r.U.Rows != 3 || r.V.Rows != 9 || len(r.S) != 3 {
		t.Fatalf("thin shape U %dx%d V %dx%d S %d", r.U.Rows, r.U.Cols, r.V.Rows, r.V.Cols, len(r.S))
	}
	if !reconstruct(r).Equalish(a, 1e-8) {
		t.Fatal("wide reconstruction failed")
	}
}

func TestGolubKahanIllConditioned(t *testing.T) {
	// Singular values spanning 12 orders of magnitude.
	a := FromRows([][]float64{
		{1e6, 0, 0},
		{0, 1, 0},
		{0, 0, 1e-6},
	})
	r, err := SVDGolubKahan(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1e6, 1, 1e-6}
	for i := range want {
		if math.Abs(r.S[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("S = %v", r.S)
		}
	}
}

// BenchmarkSVDBackends compares the two SVD implementations across the
// matrix sizes FUNNEL and MRLS actually use.
func BenchmarkSVDBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for _, size := range []struct{ m, n int }{{9, 9}, {8, 24}, {32, 32}} {
		a := randMatrix(rng, size.m, size.n)
		b.Run(benchName("Jacobi", size.m, size.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SVD(a)
			}
		})
		b.Run(benchName("GolubKahan", size.m, size.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SVDGolubKahan(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchName formats a backend/size benchmark label.
func benchName(backend string, m, n int) string {
	return backend + "-" + itoa(m) + "x" + itoa(n)
}

// itoa is a tiny positive-int formatter to avoid importing strconv in
// a test helper.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
