package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// denseOp wraps a dense symmetric matrix as a MatVec.
func denseOp(a *Matrix) MatVec {
	return func(dst, v []float64) { a.MulVecTo(dst, v) }
}

// randSym returns a random n×n symmetric matrix.
func randSym(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestLanczosTridiagRelation(t *testing.T) {
	// Qᵀ·A·Q must equal the tridiagonal (Alpha, Beta).
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(10)
		a := randSym(rng, n)
		start := make([]float64, n)
		for i := range start {
			start[i] = rng.NormFloat64()
		}
		k := 3 + rng.Intn(3)
		res, err := Lanczos(denseOp(a), start, k, true)
		if err != nil {
			t.Fatal(err)
		}
		q := res.Q
		tMat := q.T().Mul(a).Mul(q)
		for i := 0; i < res.K; i++ {
			for j := 0; j < res.K; j++ {
				want := 0.0
				switch {
				case i == j:
					want = res.Alpha[i]
				case i == j+1:
					want = res.Beta[j]
				case j == i+1:
					want = res.Beta[i]
				}
				if math.Abs(tMat.At(i, j)-want) > 1e-8 {
					t.Fatalf("QᵀAQ(%d,%d) = %v, want %v", i, j, tMat.At(i, j), want)
				}
			}
		}
		orthonormalColumns(t, q, 1e-9)
	}
}

func TestLanczosFirstBasisVectorIsStart(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 8
	a := randSym(rng, n)
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}
	res, err := Lanczos(denseOp(a), start, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	norm := Norm2(start)
	q0 := res.Q.Col(0)
	for i := range start {
		if math.Abs(q0[i]-start[i]/norm) > 1e-12 {
			t.Fatal("q₁ is not the normalized start vector")
		}
	}
}

func TestLanczosFullDimensionRecoversEigenvalues(t *testing.T) {
	// With k = n, eig(T) = eig(A) when the start vector has components
	// in all eigen-directions.
	rng := rand.New(rand.NewSource(42))
	n := 7
	a := randSym(rng, n)
	start := make([]float64, n)
	for i := range start {
		start[i] = 1 + rng.Float64()
	}
	res, err := Lanczos(denseOp(a), start, n, false)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := TridiagEig(res.Alpha, res.Beta)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Skipf("early breakdown (K=%d); acceptable for degenerate spectra", res.K)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Fatalf("eig mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestLanczosBreakdownOnInvariantSubspace(t *testing.T) {
	// Start vector is an eigenvector: Krylov space has dimension 1.
	a := FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}})
	res, err := Lanczos(denseOp(a), []float64{1, 0, 0}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || math.Abs(res.Alpha[0]-2) > 1e-14 {
		t.Fatalf("K=%d Alpha=%v", res.K, res.Alpha)
	}
}

func TestLanczosErrors(t *testing.T) {
	op := denseOp(Identity(3))
	if _, err := Lanczos(op, nil, 2, false); err == nil {
		t.Fatal("empty start should error")
	}
	if _, err := Lanczos(op, []float64{0, 0, 0}, 2, false); err == nil {
		t.Fatal("zero start should error")
	}
	if _, err := Lanczos(op, []float64{1, 0, 0}, 0, false); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestLanczosKClampedToN(t *testing.T) {
	res, err := Lanczos(denseOp(Identity(2)), []float64{1, 1}, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Fatalf("K=%d exceeds matrix order", res.K)
	}
}

func TestHankelLayout(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	// end=7, ω=3, δ=3: columns are windows ending before t.
	h := Hankel(x, 7, 3, 3)
	want := FromRows([][]float64{
		{2, 3, 4},
		{3, 4, 5},
		{4, 5, 6},
	})
	if !h.Equalish(want, 0) {
		t.Fatalf("Hankel = %+v", h)
	}
}

func TestHankelAntiDiagonalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	h := Hankel(x, 30, 5, 6)
	// Hankel structure: h[r][c] == h[r+1][c-1].
	for r := 0; r < h.Rows-1; r++ {
		for c := 1; c < h.Cols; c++ {
			if h.At(r+1, c-1) != h.At(r, c) {
				t.Fatalf("not Hankel at (%d,%d)", r, c)
			}
		}
	}
}

func TestHankelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Hankel should panic")
		}
	}()
	Hankel(make([]float64, 5), 5, 4, 4)
}

func TestGramOpMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	b := randMatrix(rng, 6, 4)
	c := b.Mul(b.T())
	op := GramOp(b)
	v := make([]float64, 6)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	dst := make([]float64, 6)
	op(dst, v)
	want := c.MulVec(v)
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("GramOp mismatch at %d", i)
		}
	}
}

func TestLanczosOnGramOpAgreesWithSVD(t *testing.T) {
	// The top eigenvalue of B·Bᵀ from Lanczos must equal σ₁² from SVD.
	rng := rand.New(rand.NewSource(45))
	b := randMatrix(rng, 9, 9)
	start := make([]float64, 9)
	for i := range start {
		start[i] = rng.NormFloat64()
	}
	res, err := Lanczos(GramOp(b), start, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := TridiagEig(res.Alpha, res.Beta)
	if err != nil {
		t.Fatal(err)
	}
	s1 := SVD(b).S[0]
	if math.Abs(vals[0]-s1*s1) > 1e-7*(1+s1*s1) {
		t.Fatalf("Lanczos top eig %v != σ₁² %v", vals[0], s1*s1)
	}
}
