package linalg

import "fmt"

// slideRefreshEvery is the default number of incremental slides between
// full Gram rebuilds. Each slide applies a retire/add update whose
// floating-point error is O(ε·‖x‖²); rebuilding every few dozen slides
// keeps the accumulated drift orders of magnitude below the 1e-9
// equivalence budget the sst sweep tests enforce, while amortizing the
// O(ω²δ) rebuild down to O(ω²δ/64) per position.
const slideRefreshEvery = 64

// SlidingHankelGram maintains the dense Gram matrix G = H·Hᵀ (ω×ω) and
// the row sums R = H·1 of the Hankel trajectory matrix
// H = Hankel(x, end, ω, δ) as end advances one position at a time.
//
// Consecutive window positions share all but one lag vector, and the
// entries of G along each diagonal are shifted copies of the same
// sliding lag-product sequence: G[r][s] = S_{s−r}(lo+r) with
// S_d(a) = Σ_c x[a+c]·x[a+c+d]. A slide therefore only has to shift the
// matrix up-left by one and extend each diagonal by a single retire/add
// update — O(ω) multiplications instead of the O(ω²·δ) rebuild — plus a
// small contiguous copy for the shift. Every slideRefreshEvery slides
// the matrix is rebuilt from scratch to wash out floating-point drift.
//
// The products of the centered samples y = x − c are maintained, where
// the center c (0 after Init, moved by Recenter) should track the local
// data level; GramInto and RowSumsInto apply the affine normalization
// w = (x − med)·inv on the way out, using the identity
//
//	Ĝ[r][s] = inv²·(G[r][s] − m·(R[r]+R[s]) + δ·m²),  m = med − c,
//
// so a per-position robust normalization (whose med/scale change at
// every position) never forces a rebuild. Centering matters for
// accuracy, not correctness: with c = 0 a KPI whose level is far above
// its spread makes the correction a difference of huge near-equal
// sums, and the cancellation can cost every digit the normalized Gram
// has. Keeping c within the spread of the data keeps all three terms
// of the identity at the spread's scale.
//
// The zero value is ready for use after Init. Buffers are retained
// across Init calls, so a pooled long-lived value performs no
// steady-state allocations.
type SlidingHankelGram struct {
	x            []float64
	end          int
	omega, delta int
	c            float64   // maintained sample offset (see Recenter)
	gram         []float64 // ω×ω row-major centered Gram
	rows         []float64 // ω centered row sums
	newcol       []float64 // slide scratch, length ω
	slides       int       // incremental slides since the last rebuild
	// RefreshEvery overrides the rebuild cadence (0 = slideRefreshEvery,
	// negative = never rebuild; used by drift tests and by callers that
	// rebuild through Recenter on their own schedule).
	RefreshEvery int
}

// Init points the operator at Hankel(x, end, omega, delta) and builds
// the Gram and row sums from scratch.
func (g *SlidingHankelGram) Init(x []float64, end, omega, delta int) {
	lo := end - delta - omega + 1
	if lo < 0 || end > len(x) {
		panic(fmt.Sprintf("linalg: sliding hankel out of range: end=%d omega=%d delta=%d len=%d", end, omega, delta, len(x)))
	}
	g.x, g.end, g.omega, g.delta = x, end, omega, delta
	g.c = 0
	if cap(g.gram) < omega*omega {
		g.gram = make([]float64, omega*omega)
	}
	g.gram = g.gram[:omega*omega]
	if cap(g.rows) < omega {
		g.rows = make([]float64, 2*omega)
	}
	g.rows = g.rows[:omega]
	if cap(g.newcol) < omega {
		g.newcol = make([]float64, omega)
	}
	g.newcol = g.newcol[:omega]
	g.rebuild()
}

// End returns the current window end (the Hankel geometry's end).
func (g *SlidingHankelGram) End() int { return g.end }

// SetSeries re-points the operator at x without touching the maintained
// products. x must agree bit-for-bit with the previously installed
// series on every bin at or before the current end — the intended use
// is a resumable sweep over a growing series, where each call sees a
// longer prefix of the same data (possibly in a reallocated buffer).
// Rebuilds and slides after the call read the same values they would
// have read from an ungrown series, so the maintained state stays
// exact.
func (g *SlidingHankelGram) SetSeries(x []float64) { g.x = x }

// Recenter moves the maintained sample offset to c and rebuilds. Callers
// tracking a drifting level (e.g. a per-position normalization median)
// call it periodically so the centered products stay at the spread's
// scale; pairing it with RefreshEvery < 0 makes Recenter the only
// rebuild cadence.
func (g *SlidingHankelGram) Recenter(c float64) {
	g.c = c
	g.rebuild()
}

// Dims returns the operator dimension ω.
func (g *SlidingHankelGram) Dims() int { return g.omega }

// rebuild recomputes the centered Gram and row sums from the series.
// Subtracting a zero center is exact, so the uncentered results are
// bit-identical to a direct computation on x.
func (g *SlidingHankelGram) rebuild() {
	x, n, cc := g.x, g.omega, g.c
	lo := g.end - g.delta - n + 1
	for r := 0; r < n; r++ {
		baseR := lo + r
		var rs float64
		for c := 0; c < g.delta; c++ {
			rs += x[baseR+c] - cc
		}
		g.rows[r] = rs
		for s := r; s < n; s++ {
			baseS := lo + s
			var acc float64
			for c := 0; c < g.delta; c++ {
				acc += (x[baseR+c] - cc) * (x[baseS+c] - cc)
			}
			g.gram[r*n+s] = acc
			g.gram[s*n+r] = acc
		}
	}
	g.slides = 0
}

// Slide advances the window end by one position. It panics when the
// series has no sample at the new end.
func (g *SlidingHankelGram) Slide() {
	if g.end >= len(g.x) {
		panic(fmt.Sprintf("linalg: sliding hankel slide past series end %d", g.end))
	}
	g.end++
	every := g.RefreshEvery
	if every == 0 {
		every = slideRefreshEvery
	}
	if every > 0 && g.slides+1 >= every {
		g.rebuild()
		return
	}
	g.slides++

	x, n, cc := g.x, g.omega, g.c
	lo := g.end - 1 - g.delta - n + 1 // lo of the *previous* position
	// Extend each diagonal by one lag product: the new last-column entry
	// of row r retires y[lo+r]·y[lo+ω−1] and admits the product one δ
	// later. Read the old last column before the shift overwrites it.
	xr1 := x[lo+n-1] - cc
	xr2 := x[lo+n-1+g.delta] - cc
	for r := 0; r < n; r++ {
		g.newcol[r] = g.gram[r*n+n-1] - (x[lo+r]-cc)*xr1 + (x[lo+r+g.delta]-cc)*xr2
	}
	// Shift the interior up-left: G'[r][s] = G[r+1][s+1].
	for r := 0; r < n-1; r++ {
		copy(g.gram[r*n:r*n+n-1], g.gram[(r+1)*n+1:(r+2)*n])
	}
	// Install the new last column and (by symmetry) last row.
	for r := 0; r < n; r++ {
		g.gram[r*n+n-1] = g.newcol[r]
		g.gram[(n-1)*n+r] = g.newcol[r]
	}
	// Row sums shift by one window start; only the last is new.
	last := g.rows[n-1] - xr1 + xr2
	copy(g.rows[:n-1], g.rows[1:n])
	g.rows[n-1] = last
}

// GramInto writes the Gram matrix of the affinely transformed window
// w = (x − med)·inv into dst (reshaped to ω×ω). med = 0, inv = 1 copies
// the raw Gram.
func (g *SlidingHankelGram) GramInto(dst *Matrix, med, inv float64) {
	n := g.omega
	dst.Reshape(n, n)
	m := med - g.c
	if m == 0 && inv == 1 {
		copy(dst.Data, g.gram)
		return
	}
	i2 := inv * inv
	c2 := float64(g.delta) * m * m
	for r := 0; r < n; r++ {
		mr := g.rows[r]
		for s := r; s < n; s++ {
			v := (g.gram[r*n+s] - m*(mr+g.rows[s]) + c2) * i2
			dst.Data[r*n+s] = v
			dst.Data[s*n+r] = v
		}
	}
}

// RowSumsInto writes the row sums of the affinely transformed window
// into dst (length ω): (R[r] − δ·med)·inv. This is the H·1 Krylov start
// vector IKA uses, without materializing H or the normalized window.
func (g *SlidingHankelGram) RowSumsInto(dst []float64, med, inv float64) {
	dm := float64(g.delta) * (med - g.c)
	for r := 0; r < g.omega; r++ {
		dst[r] = (g.rows[r] - dm) * inv
	}
}
