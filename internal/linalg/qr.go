package linalg

import (
	"fmt"
	"math"
)

// QRResult is a Householder QR factorization A = Q·R with A m×n
// (m ≥ n), Q m×n with orthonormal columns and R n×n upper triangular.
type QRResult struct {
	Q *Matrix
	R *Matrix
}

// QR computes the thin QR factorization of a by Householder
// reflections. It returns an error for m < n (the least-squares solver
// below is the only consumer and needs full column rank geometry).
func QR(a *Matrix) (QRResult, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return QRResult{}, fmt.Errorf("linalg: QR requires rows ≥ cols, got %dx%d", m, n)
	}
	r := a.Clone()
	// Accumulate Q implicitly as the product of Householder reflectors
	// applied to the identity.
	q := Identity(m)

	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			continue
		}
		alpha := -math.Copysign(norm, r.At(k, k))
		var vnorm2 float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I − 2vvᵀ/‖v‖² to R (columns k..n−1).
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i])
			}
		}
		// Apply H to Q from the right (accumulating Q = H₁H₂···).
		for rowi := 0; rowi < m; rowi++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += q.At(rowi, i) * v[i]
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				q.Set(rowi, i, q.At(rowi, i)-f*v[i])
			}
		}
	}

	// Thin forms.
	thinQ := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		copy(thinQ.Data[i*n:(i+1)*n], q.Data[i*m:i*m+n])
	}
	thinR := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			thinR.Set(i, j, r.At(i, j))
		}
	}
	return QRResult{Q: thinQ, R: thinR}, nil
}

// SolveLeastSquares returns the minimum-residual solution x of
// A·x ≈ b via QR: R·x = Qᵀ·b by back substitution. It returns an error
// when A is (numerically) column-rank-deficient.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: b length %d != rows %d", len(b), a.Rows)
	}
	qr, err := QR(a)
	if err != nil {
		return nil, err
	}
	n := a.Cols
	// Rank check against the largest diagonal magnitude.
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := math.Abs(qr.R.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		return nil, fmt.Errorf("linalg: zero design matrix")
	}
	for i := 0; i < n; i++ {
		if math.Abs(qr.R.At(i, i)) < 1e-12*maxDiag {
			return nil, fmt.Errorf("linalg: rank-deficient design matrix (column %d)", i)
		}
	}
	// y = Qᵀ b.
	y := make([]float64, n)
	qr.Q.MulTVecTo(y, b)
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= qr.R.At(i, j) * x[j]
		}
		x[i] = s / qr.R.At(i, i)
	}
	return x, nil
}
