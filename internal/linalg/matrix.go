// Package linalg implements the dense linear algebra FUNNEL needs, from
// scratch on the standard library: a row-major dense matrix, one-sided
// Jacobi SVD, Householder tridiagonalization, the QL implicit-shift
// eigensolver for symmetric tridiagonal matrices, Lanczos iteration with
// full reorthogonalization, and Hankel trajectory matrices with implicit
// (matrix-free) B·Bᵀ products.
//
// The SVD underlies classic SST and the MRLS baseline; Lanczos + QL are
// the Implicit Krylov Approximation (IKA) that gives FUNNEL its speed
// (§3.2.3 of the paper, after Idé & Tsuda, SDM'07).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements; element (i, j) lives at Data[i*Cols+j].
	Data []float64
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length. The data is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Reshape sets m to r×c, reusing the backing array when capacity
// allows. Element contents are unspecified afterwards; callers are
// expected to overwrite every entry. Hot paths use it to recycle a
// pooled matrix across windows without reallocating.
func (m *Matrix) Reshape(r, c int) {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	if cap(m.Data) < r*c {
		m.Data = make([]float64, r*c)
	}
	m.Rows, m.Cols, m.Data = r, c, m.Data[:r*c]
}

// Apply writes m·v into dst, making a square Matrix usable as a SymOp
// for LanczosWS. The caller is responsible for m actually being
// symmetric (Lanczos on a non-symmetric operator is undefined).
func (m *Matrix) Apply(dst, v []float64) { m.MulVecTo(dst, v) }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulInto writes a·b into dst (reshaped to a.Rows×b.Cols), with the
// same accumulation order and zero-skip term set as Mul, so results are
// bit-identical to the allocating path. dst must not alias a or b.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		oi := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += aik * bkj
			}
		}
	}
}

// GramSelfInto writes a·aᵀ into dst (reshaped to a.Rows×a.Rows) without
// materializing the transpose. The accumulation mirrors
// a.Mul(a.T()) term for term — same k order, same zero skips — so the
// result is bit-identical to the allocating path.
func GramSelfInto(dst, a *Matrix) {
	n := a.Rows
	dst.Reshape(n, n)
	for i := 0; i < n; i++ {
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < n; j++ {
			aj := a.Data[j*a.Cols : (j+1)*a.Cols]
			var s float64
			for k, aik := range ai {
				if aik == 0 {
					continue
				}
				s += aik * aj[k]
			}
			dst.Data[i*n+j] = s
		}
	}
}

// MulVec returns m·v as a new slice of length m.Rows.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: mulvec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	m.MulVecTo(out, v)
	return out
}

// MulVecTo writes m·v into dst, which must have length m.Rows.
// It performs no allocation.
func (m *Matrix) MulVecTo(dst, v []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, r := range row {
			s += r * v[j]
		}
		dst[i] = s
	}
}

// MulTVecTo writes mᵀ·v into dst (length m.Cols) without forming the
// transpose. v must have length m.Rows.
func (m *Matrix) MulTVecTo(dst, v []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, r := range row {
			dst[j] += r * vi
		}
	}
}

// Col returns column j as a new slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol assigns column j from v (length m.Rows).
func (m *Matrix) SetCol(j int, v []float64) {
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Equalish reports whether m and b agree elementwise within tol.
func (m *Matrix) Equalish(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow for
// large components.
func Norm2(v []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Normalize scales v to unit Euclidean norm in place and returns the
// original norm. A zero vector is left untouched and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	for i := range v {
		v[i] /= n
	}
	return n
}

// Axpy computes y ← y + a·x in place.
func Axpy(a float64, x, y []float64) {
	for i, xi := range x {
		y[i] += a * xi
	}
}

// hypot returns sqrt(a²+b²) without undue overflow (Numerical Recipes
// pythag). Kept below the compiler's inlining budget: the QL rotation
// loops call it once per rotation and the call overhead is measurable
// there.
func hypot(a, b float64) float64 {
	a, b = math.Abs(a), math.Abs(b)
	if a < b {
		a, b = b, a
	}
	if a == 0 {
		return 0
	}
	r := b / a
	return a * math.Sqrt(1+r*r)
}
