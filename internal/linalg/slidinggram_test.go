package linalg

import (
	"math"
	"testing"
)

// refGramRows computes the raw Hankel Gram and row sums directly, with
// the same c-order accumulation as SlidingHankelGram.rebuild, so a
// freshly built operator must match it bit for bit.
func refGramRows(x []float64, end, omega, delta int) (gram, rows []float64) {
	lo := end - delta - omega + 1
	gram = make([]float64, omega*omega)
	rows = make([]float64, omega)
	for r := 0; r < omega; r++ {
		var rs float64
		for c := 0; c < delta; c++ {
			rs += x[lo+r+c]
		}
		rows[r] = rs
		for s := 0; s < omega; s++ {
			var acc float64
			for c := 0; c < delta; c++ {
				acc += x[lo+r+c] * x[lo+s+c]
			}
			gram[r*omega+s] = acc
		}
	}
	return gram, rows
}

func TestSlidingGramInitMatchesDirect(t *testing.T) {
	x := randSeries(200, 70)
	cases := []struct{ end, omega, delta int }{
		{20, 9, 9},
		{40, 5, 9},
		{60, 9, 5},
		{17, 9, 9}, // lo == 0 edge
		{3, 1, 3},
		{200, 15, 15},
	}
	var g SlidingHankelGram
	var dst Matrix
	for _, c := range cases {
		g.Init(x, c.end, c.omega, c.delta)
		if g.End() != c.end || g.Dims() != c.omega {
			t.Fatalf("case %+v: End=%d Dims=%d", c, g.End(), g.Dims())
		}
		wantG, wantR := refGramRows(x, c.end, c.omega, c.delta)
		g.GramInto(&dst, 0, 1)
		for i, v := range dst.Data {
			if v != wantG[i] {
				t.Fatalf("case %+v: gram[%d] = %v, want %v", c, i, v, wantG[i])
			}
		}
		rows := make([]float64, c.omega)
		g.RowSumsInto(rows, 0, 1)
		for i, v := range rows {
			if v != wantR[i] {
				t.Fatalf("case %+v: rows[%d] = %v, want %v", c, i, v, wantR[i])
			}
		}
	}
}

// closeRel fails unless |got−want| ≤ tol·max(1, |want|).
func closeRel(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	lim := tol * math.Max(1, math.Abs(want))
	if math.Abs(got-want) > lim {
		t.Fatalf("%s = %v, want %v (|Δ| = %g > %g)", what, got, want, math.Abs(got-want), lim)
	}
}

// Sliding across the whole series must track the direct computation —
// both at the default rebuild cadence and with rebuilds disabled, where
// only accumulated floating-point drift separates the two.
func TestSlidingGramSlideMatchesDirect(t *testing.T) {
	x := randSeries(700, 71)
	for _, refresh := range []int{0, -1} {
		omega, delta := 9, 9
		start := omega + delta - 1
		var g SlidingHankelGram
		g.RefreshEvery = refresh
		g.Init(x, start, omega, delta)
		var dst Matrix
		rows := make([]float64, omega)
		for end := start + 1; end <= len(x); end++ {
			g.Slide()
			if g.End() != end {
				t.Fatalf("refresh=%d: End = %d, want %d", refresh, g.End(), end)
			}
			wantG, wantR := refGramRows(x, end, omega, delta)
			g.GramInto(&dst, 0, 1)
			for i := range wantG {
				closeRel(t, dst.Data[i], wantG[i], 1e-9, "gram entry")
			}
			g.RowSumsInto(rows, 0, 1)
			for i := range wantR {
				closeRel(t, rows[i], wantR[i], 1e-9, "row sum")
			}
		}
	}
}

// The affine-correction identity must reproduce the Gram and row sums of
// the explicitly normalized window w = (x − med)·inv.
func TestSlidingGramNormalizedMatchesDirect(t *testing.T) {
	x := randSeries(300, 72)
	omega, delta := 9, 9
	start := omega + delta - 1
	var g SlidingHankelGram
	g.Init(x, start, omega, delta)
	var dst Matrix
	rows := make([]float64, omega)
	med, inv := 3.7, 0.42
	w := make([]float64, len(x))
	for i, v := range x {
		w[i] = (v - med) * inv
	}
	for end := start; end <= start+130; end++ {
		if end > start {
			g.Slide()
		}
		wantG, wantR := refGramRows(w, end, omega, delta)
		g.GramInto(&dst, med, inv)
		for i := range wantG {
			closeRel(t, dst.Data[i], wantG[i], 1e-9, "normalized gram entry")
		}
		g.RowSumsInto(rows, med, inv)
		for i := range wantR {
			closeRel(t, rows[i], wantR[i], 1e-9, "normalized row sum")
		}
	}
}

// The slid Gram matrix must behave as the same SymOp as the implicit
// HankelGram operator within drift tolerance.
func TestSlidingGramApplyMatchesHankelGram(t *testing.T) {
	x := randSeries(200, 73)
	omega, delta := 7, 9
	start := omega + delta - 1
	var g SlidingHankelGram
	g.Init(x, start, omega, delta)
	for i := 0; i < 50; i++ {
		g.Slide()
	}
	var dst Matrix
	g.GramInto(&dst, 0, 1)
	var h HankelGram
	h.Reset(x, g.End(), omega, delta)
	v := randSeries(omega, 74)
	got := make([]float64, omega)
	want := make([]float64, omega)
	dst.Apply(got, v)
	h.Apply(want, v)
	for i := range want {
		closeRel(t, got[i], want[i], 1e-9, "operator apply")
	}
}

// A KPI whose level dwarfs its spread is where the affine-correction
// identity cancels catastrophically without centering: the raw products
// sit at level², the normalized Gram at spread². Recentering near the
// level must keep the normalized readout at full precision, and sliding
// between recenters must not lose it.
func TestSlidingGramRecenterLargeOffset(t *testing.T) {
	noise := randSeries(300, 77)
	x := make([]float64, len(noise))
	const level = 4.2e7
	for i, v := range noise {
		x[i] = level + v // spread ~10 on a ~4e7 level
	}
	omega, delta := 9, 9
	start := omega + delta - 1
	var g SlidingHankelGram
	g.RefreshEvery = -1 // recentring is the only rebuild
	g.Init(x, start, omega, delta)
	med, inv := level+0.3, 0.1
	w := make([]float64, len(x))
	for i, v := range x {
		w[i] = (v - med) * inv
	}
	var dst Matrix
	for end := start; end <= start+200; end++ {
		if end > start {
			g.Slide()
		}
		if (end-start)%64 == 0 {
			g.Recenter(med)
		}
		wantG, _ := refGramRows(w, end, omega, delta)
		g.GramInto(&dst, med, inv)
		for i := range wantG {
			closeRel(t, dst.Data[i], wantG[i], 1e-9, "recentered gram entry")
		}
	}
}

func TestSlidingGramPanics(t *testing.T) {
	x := randSeries(30, 75)
	var g SlidingHankelGram
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		f()
	}
	mustPanic("short series", func() { g.Init(x, 10, 9, 9) })
	g.Init(x, 30, 9, 9)
	mustPanic("slide past end", func() { g.Slide() })
}

// Steady-state sliding must not allocate: one slide plus both readouts.
func TestSlidingGramZeroAlloc(t *testing.T) {
	x := randSeries(4096, 76)
	omega, delta := 9, 9
	var g SlidingHankelGram
	g.Init(x, omega+delta-1, omega, delta)
	var dst Matrix
	rows := make([]float64, omega)
	g.GramInto(&dst, 0.5, 2) // warm dst
	allocs := testing.AllocsPerRun(200, func() {
		g.Slide()
		g.GramInto(&dst, 0.5, 2)
		g.RowSumsInto(rows, 0.5, 2)
	})
	if allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", allocs)
	}
}
