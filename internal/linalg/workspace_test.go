package linalg

import (
	"math"
	"testing"
)

// spdOp builds a deterministic implicit SPD operator (the Gram of a
// random tall matrix) of dimension n.
func spdOp(n int, seed int64) MatVec {
	m := &Matrix{Rows: n, Cols: n + 3, Data: randSeries(n*(n+3), seed)}
	return GramOp(m)
}

// LanczosWS must reproduce the allocating Lanczos exactly, including the
// Krylov basis, for full runs and early breakdowns.
func TestLanczosWSMatchesLanczos(t *testing.T) {
	cases := []struct {
		name  string
		n, k  int
		start func(n int) []float64
		op    func(n int) MatVec
	}{
		{"full", 9, 5, func(n int) []float64 { return randSeries(n, 11) }, func(n int) MatVec { return spdOp(n, 12) }},
		{"k-exceeds-n", 4, 9, func(n int) []float64 { return randSeries(n, 13) }, func(n int) MatVec { return spdOp(n, 14) }},
		{"breakdown", 9, 5, func(n int) []float64 { return randSeries(n, 15) }, func(n int) MatVec {
			// Rank-1 operator: the Krylov space is exhausted after one step.
			u := randSeries(n, 16)
			return func(dst, v []float64) {
				d := Dot(u, v)
				for i := range dst {
					dst[i] = d * u[i]
				}
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			start := c.start(c.n)
			op := c.op(c.n)
			want, err := Lanczos(op, start, c.k, true)
			if err != nil {
				t.Fatal(err)
			}
			var ws LanczosWorkspace
			got, err := LanczosWS(&ws, op, start, c.k, true)
			if err != nil {
				t.Fatal(err)
			}
			if got.K != want.K {
				t.Fatalf("K = %d, want %d", got.K, want.K)
			}
			for i := range want.Alpha {
				if got.Alpha[i] != want.Alpha[i] {
					t.Fatalf("alpha[%d] = %v, want %v", i, got.Alpha[i], want.Alpha[i])
				}
			}
			for i := range want.Beta {
				if got.Beta[i] != want.Beta[i] {
					t.Fatalf("beta[%d] = %v, want %v", i, got.Beta[i], want.Beta[i])
				}
			}
			if !got.Q.Equalish(want.Q, 0) {
				t.Fatal("Krylov bases differ")
			}
		})
	}
}

// A reused workspace must give the same answer as a fresh one — the
// previous window's state must not leak — and larger geometries after
// smaller ones must regrow correctly.
func TestLanczosWSReuseAcrossGeometries(t *testing.T) {
	var ws LanczosWorkspace
	for _, n := range []int{5, 9, 4, 15} {
		start := randSeries(n, int64(20+n))
		op := spdOp(n, int64(30+n))
		want, err := Lanczos(op, start, 5, true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LanczosWS(&ws, op, start, 5, true)
		if err != nil {
			t.Fatal(err)
		}
		if got.K != want.K || !got.Q.Equalish(want.Q, 0) {
			t.Fatalf("n=%d: reused workspace diverged", n)
		}
	}
}

func TestLanczosWSErrors(t *testing.T) {
	var ws LanczosWorkspace
	op := spdOp(5, 40)
	if _, err := LanczosWS(&ws, op, nil, 5, false); err == nil {
		t.Fatal("empty start should error")
	}
	if _, err := LanczosWS(&ws, op, make([]float64, 5), 5, false); err == nil {
		t.Fatal("zero start should error")
	}
	if _, err := LanczosWS(&ws, op, randSeries(5, 41), 0, false); err == nil {
		t.Fatal("k = 0 should error")
	}
}

// Steady-state LanczosWS must not allocate, with or without the basis.
func TestLanczosWSZeroAlloc(t *testing.T) {
	n := 9
	start := randSeries(n, 50)
	var h HankelGram
	x := randSeries(64, 51)
	h.Reset(x, 34, n, n)
	var ws LanczosWorkspace
	for _, wantBasis := range []bool{false, true} {
		if _, err := LanczosWS(&ws, &h, start, 5, wantBasis); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := LanczosWS(&ws, &h, start, 5, wantBasis); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("wantBasis=%v: allocs/op = %v, want 0", wantBasis, allocs)
		}
	}
}

// TridiagEigWS must reproduce TridiagEig exactly and satisfy the
// eigendecomposition property T·v = λ·v.
func TestTridiagEigWSMatchesTridiagEig(t *testing.T) {
	d := []float64{4, 3, 7, 1, 5}
	e := []float64{1, 0.5, 2, 0.25}
	wantVals, wantVecs, err := TridiagEig(d, e)
	if err != nil {
		t.Fatal(err)
	}
	var ws EigWorkspace
	vals, vecs, err := TridiagEigWS(&ws, d, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantVals {
		if vals[i] != wantVals[i] {
			t.Fatalf("val[%d] = %v, want %v", i, vals[i], wantVals[i])
		}
	}
	if !vecs.Equalish(wantVecs, 0) {
		t.Fatal("eigenvectors differ")
	}
	// Residual check: ‖T·v − λ·v‖ small for every pair.
	n := len(d)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			tv := d[i] * vecs.At(i, j)
			if i > 0 {
				tv += e[i-1] * vecs.At(i-1, j)
			}
			if i < n-1 {
				tv += e[i] * vecs.At(i+1, j)
			}
			if math.Abs(tv-vals[j]*vecs.At(i, j)) > 1e-10 {
				t.Fatalf("residual too large at (%d,%d)", i, j)
			}
		}
	}
}

// Tied eigenvalues must keep a deterministic (stable) order so repeated
// scoring of the same window selects the same eigenpairs.
func TestTridiagEigWSDeterministicOnTies(t *testing.T) {
	d := []float64{2, 2, 2}
	e := []float64{0, 0}
	var ws EigWorkspace
	vals1, vecs1, err := TridiagEigWS(&ws, d, e)
	if err != nil {
		t.Fatal(err)
	}
	snapVals := append([]float64(nil), vals1...)
	snapVecs := vecs1.Clone()
	vals2, vecs2, err := TridiagEigWS(&ws, d, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snapVals {
		if vals2[i] != snapVals[i] {
			t.Fatal("tied eigenvalues reordered across calls")
		}
	}
	if !vecs2.Equalish(snapVecs, 0) {
		t.Fatal("tied eigenvectors reordered across calls")
	}
}

// Steady-state TridiagEigWS must not allocate.
func TestTridiagEigWSZeroAlloc(t *testing.T) {
	d := randSeries(5, 60)
	e := randSeries(4, 61)
	var ws EigWorkspace
	if _, _, err := TridiagEigWS(&ws, d, e); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := TridiagEigWS(&ws, d, e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", allocs)
	}
}

func TestTridiagEigWSEmptyAndMismatch(t *testing.T) {
	var ws EigWorkspace
	vals, vecs, err := TridiagEigWS(&ws, nil, nil)
	if err != nil || len(vals) != 0 || vecs == nil {
		t.Fatalf("empty input: vals=%v vecs=%v err=%v", vals, vecs, err)
	}
	if _, _, err := TridiagEigWS(&ws, []float64{1, 2}, []float64{3, 4}); err == nil {
		t.Fatal("mismatched subdiagonal should error")
	}
}
