package linalg

import (
	"fmt"
	"math"
)

// tqliMaxIter bounds the implicit-shift QL iterations per eigenvalue.
const tqliMaxIter = 50

// EigWorkspace holds the scratch buffers TridiagEigWS needs: the
// working copies of the diagonal and subdiagonal, the rotation
// accumulator, the sort permutation and the output eigenpairs. The zero
// value is ready for use; buffers grow on demand and are retained, so a
// long-lived workspace makes repeated solves allocation-free.
//
// A workspace is not safe for concurrent use, and the vals slice and
// vecs matrix returned by TridiagEigWS remain valid only until the next
// call with the same workspace.
type EigWorkspace struct {
	dd, ee, vals []float64
	idx          []int
	z, vecs      Matrix
	row, rowOut  []float64 // first-row accumulators for TridiagEigFirstRowWS
	symA, symV   Matrix    // SymEigWS: tred2 working copy (becomes Q) and Q·tvecs
	symD, symE   []float64 // SymEigWS: tridiagonal form of the input
}

// ensure sizes the buffers for order n.
func (ws *EigWorkspace) ensure(n int) {
	if cap(ws.dd) < n {
		ws.dd = make([]float64, n)
	}
	if cap(ws.ee) < n {
		ws.ee = make([]float64, n)
	}
	if cap(ws.vals) < n {
		ws.vals = make([]float64, n)
	}
	if cap(ws.idx) < n {
		ws.idx = make([]int, n)
	}
	if cap(ws.z.Data) < n*n {
		ws.z.Data = make([]float64, n*n)
	}
	if cap(ws.vecs.Data) < n*n {
		ws.vecs.Data = make([]float64, n*n)
	}
	ws.dd, ws.ee, ws.vals, ws.idx = ws.dd[:n], ws.ee[:n], ws.vals[:n], ws.idx[:n]
	ws.z.Rows, ws.z.Cols, ws.z.Data = n, n, ws.z.Data[:n*n]
	ws.vecs.Rows, ws.vecs.Cols, ws.vecs.Data = n, n, ws.vecs.Data[:n*n]
}

// TridiagEig computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix with diagonal d (length n) and subdiagonal e
// (length n−1) using the QL algorithm with implicit shifts (the "QL
// iteration" the paper cites from Numerical Recipes, §3.2.3).
//
// The returned eigenvalues are in descending order; column j of the
// returned matrix is the eigenvector for eigenvalue j, expressed in the
// basis in which the tridiagonal matrix is given (for Lanczos output,
// the Krylov basis). d and e are not modified.
func TridiagEig(d, e []float64) (vals []float64, vecs *Matrix, err error) {
	ws := &EigWorkspace{}
	return TridiagEigWS(ws, d, e)
}

// TridiagEigWS is TridiagEig with every buffer drawn from ws, performing
// no allocation once the workspace has warmed up. The returned slice and
// matrix alias ws-owned memory; they are invalidated by the next call
// with the same workspace.
func TridiagEigWS(ws *EigWorkspace, d, e []float64) (vals []float64, vecs *Matrix, err error) {
	n := len(d)
	if n == 0 {
		ws.ensure(0)
		return nil, &ws.vecs, nil
	}
	if len(e) != n-1 && !(n == 1 && len(e) == 0) {
		return nil, nil, fmt.Errorf("linalg: subdiagonal length %d for order %d", len(e), n)
	}
	ws.ensure(n)
	dd := ws.dd
	copy(dd, d)
	// tqli uses e[1..n-1] with e[0] unused in NR indexing; here ee[i] is
	// the element below dd[i], shifted so ee has length n with a zero
	// sentinel at the end.
	ee := ws.ee
	copy(ee, e)
	ee[n-1] = 0

	z := &ws.z
	for i := range z.Data {
		z.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		z.Data[i*n+i] = 1
	}

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter == tqliMaxIter {
				return nil, nil, fmt.Errorf("linalg: QL iteration failed to converge at index %d", l)
			}
			// Find a small subdiagonal element to split the matrix.
			var m int
			for m = l; m < n-1; m++ {
				ddm := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-300 || math.Abs(ee[m])+ddm == ddm {
					break
				}
			}
			if m == l {
				break
			}
			// Form implicit shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					// Recover from underflow as in Numerical Recipes.
					dd[i+1] -= p
					ee[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvector matrix.
				for k := 0; k < n; k++ {
					f := z.Data[k*n+i+1]
					z.Data[k*n+i+1] = s*z.Data[k*n+i] + c*f
					z.Data[k*n+i] = c*z.Data[k*n+i] - s*f
				}
			}
			if underflow {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	// Sort eigenpairs in descending eigenvalue order. A stable insertion
	// sort keeps tied eigenvalues in QL output order and needs no
	// allocation — the matrices here are k×k with k ≤ 2η.
	idx := ws.idx
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && dd[idx[j]] > dd[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals = ws.vals
	vecs = &ws.vecs
	for dst, src := range idx {
		vals[dst] = dd[src]
		for k := 0; k < n; k++ {
			vecs.Data[k*n+dst] = z.Data[k*n+src]
		}
	}
	return vals, vecs, nil
}

// TridiagEigFirstRowWS computes the eigenvalues of the symmetric
// tridiagonal matrix (diagonal d, subdiagonal e) together with only the
// FIRST component of every eigenvector, in descending eigenvalue order.
//
// It runs the exact same QL rotations as TridiagEigWS but accumulates
// them into a single row of the eigenvector matrix instead of all n —
// each rotation costs O(1) instead of O(n). The returned first-row
// components are bit-identical to row 0 of TridiagEigWS's eigenvector
// matrix (same rotations, same arithmetic, same stable ordering).
//
// This is the eigensolve shape of IKA's Eq. 13 discordance stage, which
// consumes only x_j(1)² — the squared cosines between the Krylov start
// vector and the Ritz directions — and is the hottest loop of the whole
// pipeline (three of the four eigensolves per scored window).
//
// The returned slices alias ws-owned memory and are invalidated by the
// next call with the same workspace. d and e are not modified.
func TridiagEigFirstRowWS(ws *EigWorkspace, d, e []float64) (vals, first []float64, err error) {
	n := len(d)
	if n == 0 {
		return nil, nil, nil
	}
	if len(e) != n-1 && !(n == 1 && len(e) == 0) {
		return nil, nil, fmt.Errorf("linalg: subdiagonal length %d for order %d", len(e), n)
	}
	ws.ensure(n)
	if cap(ws.row) < n {
		ws.row = make([]float64, n)
		ws.rowOut = make([]float64, n)
	}
	ws.row, ws.rowOut = ws.row[:n], ws.rowOut[:n]
	dd := ws.dd
	copy(dd, d)
	ee := ws.ee
	copy(ee, e)
	ee[n-1] = 0

	// Row 0 of the identity: the rotations below act on it exactly as
	// they act on row 0 of the full accumulator in TridiagEigWS.
	row := ws.row
	for i := range row {
		row[i] = 0
	}
	row[0] = 1

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter == tqliMaxIter {
				return nil, nil, fmt.Errorf("linalg: QL iteration failed to converge at index %d", l)
			}
			var m int
			for m = l; m < n-1; m++ {
				ddm := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-300 || math.Abs(ee[m])+ddm == ddm {
					break
				}
			}
			if m == l {
				break
			}
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into row 0 only.
				f2 := row[i+1]
				row[i+1] = s*row[i] + c*f2
				row[i] = c*row[i] - s*f2
			}
			if underflow {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	idx := ws.idx
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && dd[idx[j]] > dd[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals = ws.vals
	first = ws.rowOut
	for dst, src := range idx {
		vals[dst] = dd[src]
		first[dst] = row[src]
	}
	return vals, first, nil
}

// SymEig computes all eigenvalues and eigenvectors of the symmetric
// matrix a via Householder tridiagonalization followed by TridiagEig.
// Eigenvalues are returned in descending order; column j of the returned
// matrix is the eigenvector for eigenvalue j. Only the lower triangle of
// a is read.
func SymEig(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	var ws EigWorkspace
	return SymEigWS(&ws, a)
}

// SymEigWS is SymEig with every buffer drawn from ws, performing no
// allocation once the workspace has warmed up. It runs the identical
// reduction, QL iteration and back-transform, so results are
// bit-identical to the allocating path. The returned slice and matrix
// alias ws-owned memory; they are invalidated by the next call with the
// same workspace. a is not modified.
func SymEigWS(ws *EigWorkspace, a *Matrix) (vals []float64, vecs *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: SymEig requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		ws.symV.Reshape(0, 0)
		return nil, &ws.symV, nil
	}
	ws.symA.Reshape(n, n)
	copy(ws.symA.Data, a.Data)
	if cap(ws.symD) < n {
		ws.symD = make([]float64, n)
		ws.symE = make([]float64, n)
	}
	ws.symD, ws.symE = ws.symD[:n], ws.symE[:n]
	e := tred2(&ws.symA, ws.symD, ws.symE)
	vals, tvecs, err := TridiagEigWS(ws, ws.symD, e)
	if err != nil {
		return nil, nil, err
	}
	// Back-transform the tridiagonal eigenvectors: columns of Q·tvecs
	// (tred2 left Q in symA).
	MulInto(&ws.symV, &ws.symA, tvecs)
	return vals, &ws.symV, nil
}

// tred2 reduces the symmetric matrix a (destroyed: it becomes the
// accumulated orthogonal transformation Q with a = Q·T·Qᵀ) to
// tridiagonal form with Householder reflections. The diagonal is written
// into d and the subdiagonal into eFull (both length n, eFull[0]
// scratch); the returned subdiagonal view e aliases eFull[1:].
func tred2(a *Matrix, d, eFull []float64) (e []float64) {
	n := a.Rows

	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a.At(i, k))
			}
			if scale == 0 {
				eFull[i] = a.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					a.Set(i, k, a.At(i, k)/scale)
					h += a.At(i, k) * a.At(i, k)
				}
				f := a.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				eFull[i] = scale * g
				h -= f * g
				a.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					a.Set(j, i, a.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += a.At(j, k) * a.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += a.At(k, j) * a.At(i, k)
					}
					eFull[j] = g / h
					f += eFull[j] * a.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a.At(i, j)
					g = eFull[j] - hh*f
					eFull[j] = g
					for k := 0; k <= j; k++ {
						a.Set(j, k, a.At(j, k)-f*eFull[k]-g*a.At(i, k))
					}
				}
			}
		} else {
			eFull[i] = a.At(i, l)
		}
		d[i] = h
	}

	d[0] = 0
	eFull[0] = 0
	// Accumulate transformations.
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += a.At(i, k) * a.At(k, j)
				}
				for k := 0; k <= l; k++ {
					a.Set(k, j, a.At(k, j)-g*a.At(k, i))
				}
			}
		}
		d[i] = a.At(i, i)
		a.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			a.Set(j, i, 0)
			a.Set(i, j, 0)
		}
	}

	return eFull[1:n]
}
