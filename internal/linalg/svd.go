package linalg

import (
	"math"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// with singular values in descending order, U of size m×r and V of size
// n×r where r = min(m, n).
type SVDResult struct {
	U *Matrix   // left singular vectors, one per column
	S []float64 // singular values, descending
	V *Matrix   // right singular vectors, one per column
}

// jacobiMaxSweeps bounds the number of one-sided Jacobi sweeps. Typical
// matrices converge in well under 30 sweeps; the bound only guards
// against pathological input.
const jacobiMaxSweeps = 60

// SVDWorkspace holds the scratch buffers SVDWS needs: the working copy
// of the input, the rotation accumulator, the unsorted and sorted
// singular triplets and the sort permutation. The zero value is ready
// for use; buffers grow on demand and are retained, so a long-lived
// workspace makes repeated decompositions allocation-free.
//
// A workspace is not safe for concurrent use, and the matrices/slices
// inside an SVDResult produced with it remain valid only until the next
// call with the same workspace.
type SVDWorkspace struct {
	w, v, u, us, vs Matrix
	s, ss           []float64
	idx             []int
}

// SVD computes a thin singular value decomposition of a using one-sided
// Jacobi rotations. Jacobi SVD is slower than Golub–Kahan for large
// matrices but simple, unconditionally convergent and highly accurate —
// exactly the trade-off the paper attributes to full SVD when motivating
// the IKA fast path.
func SVD(a *Matrix) SVDResult {
	var ws SVDWorkspace
	return SVDWS(&ws, a)
}

// SVDWS is SVD with every buffer drawn from ws, performing no allocation
// once the workspace has warmed up. It runs the same rotation sequence
// as SVD, so results are bit-identical to the allocating path. The
// returned matrices and slice alias ws-owned memory; they are
// invalidated by the next call with the same workspace.
func SVDWS(ws *SVDWorkspace, a *Matrix) SVDResult {
	m, n := a.Rows, a.Cols
	if m >= n {
		ws.w.Reshape(m, n)
		copy(ws.w.Data, a.Data)
		return svdTall(ws)
	}
	// For wide matrices decompose the transpose and swap U/V.
	ws.w.Reshape(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ws.w.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	r := svdTall(ws)
	return SVDResult{U: r.V, S: r.S, V: r.U}
}

// svdTall runs one-sided Jacobi on the tall (m ≥ n) matrix staged in
// ws.w, destroying it.
func svdTall(ws *SVDWorkspace) SVDResult {
	w := &ws.w
	m, n := w.Rows, w.Cols
	v := &ws.v
	v.Reshape(n, n)
	for i := range v.Data {
		v.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		v.Data[i*n+i] = 1
	}
	if n == 0 {
		ws.u.Reshape(m, 0)
		return SVDResult{U: &ws.u, S: nil, V: v}
	}

	// Frobenius-based convergence threshold for off-diagonal inner
	// products.
	var fro float64
	for _, x := range w.Data {
		fro += x * x
	}
	eps := 1e-15 * fro
	if eps == 0 {
		eps = 1e-300
	}

	colDot := func(p, q int) (app, aqq, apq float64) {
		for i := 0; i < m; i++ {
			wp := w.Data[i*n+p]
			wq := w.Data[i*n+q]
			app += wp * wp
			aqq += wq * wq
			apq += wp * wq
		}
		return
	}

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				app, aqq, apq := colDot(p, q)
				if apq*apq <= eps*1e-4 || (app == 0 && aqq == 0) {
					continue
				}
				// Skip rotations that cannot matter numerically.
				if math.Abs(apq) <= 1e-15*math.Sqrt(app*aqq) {
					continue
				}
				converged = false
				// Compute the Jacobi rotation that annihilates the
				// (p,q) entry of WᵀW.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Apply to columns p, q of W and V.
				for i := 0; i < m; i++ {
					wp := w.Data[i*n+p]
					wq := w.Data[i*n+q]
					w.Data[i*n+p] = c*wp - s*wq
					w.Data[i*n+q] = s*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.Data[i*n+p]
					vq := v.Data[i*n+q]
					v.Data[i*n+p] = c*vp - s*vq
					v.Data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if converged {
			break
		}
	}

	// Column norms are the singular values; normalized columns form U.
	if cap(ws.s) < n {
		ws.s = make([]float64, n)
		ws.ss = make([]float64, n)
		ws.idx = make([]int, n)
	}
	s := ws.s[:n]
	u := &ws.u
	u.Reshape(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			x := w.Data[i*n+j]
			norm += x * x
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Data[i*n+j] = w.Data[i*n+j] / norm
			}
		} else {
			// Zero singular value: leave the U column zero; it is
			// completed to an orthonormal basis only if a caller needs
			// it, which FUNNEL does not.
			for i := 0; i < m; i++ {
				u.Data[i*n+j] = 0
			}
		}
	}

	// Sort descending by singular value, permuting U and V columns. A
	// stable insertion sort keeps tied values in Jacobi output order and
	// needs no allocation — n is a window width here, never large.
	idx := ws.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && s[idx[j]] > s[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	ss := ws.ss[:n]
	us, vs := &ws.us, &ws.vs
	us.Reshape(m, n)
	vs.Reshape(n, n)
	for dst, src := range idx {
		ss[dst] = s[src]
		for i := 0; i < m; i++ {
			us.Data[i*n+dst] = u.Data[i*n+src]
		}
		for i := 0; i < n; i++ {
			vs.Data[i*n+dst] = v.Data[i*n+src]
		}
	}
	return SVDResult{U: us, S: ss, V: vs}
}

// TopLeftSingularVectors returns the first k left singular vectors of a
// as the columns of an a.Rows×k matrix. It panics if k exceeds
// min(a.Rows, a.Cols).
func TopLeftSingularVectors(a *Matrix, k int) *Matrix {
	var ws SVDWorkspace
	out := &Matrix{}
	TopLeftSingularVectorsWS(&ws, out, a, k)
	return out
}

// TopLeftSingularVectorsWS is TopLeftSingularVectors with the
// decomposition drawn from ws and the result written into dst (reshaped
// to a.Rows×k), performing no allocation once both are warm. Values are
// bit-identical to the allocating path.
func TopLeftSingularVectorsWS(ws *SVDWorkspace, dst, a *Matrix, k int) {
	r := SVDWS(ws, a)
	if k > len(r.S) {
		panic("linalg: k exceeds rank bound")
	}
	dst.Reshape(a.Rows, k)
	for j := 0; j < k; j++ {
		for i := 0; i < a.Rows; i++ {
			dst.Data[i*k+j] = r.U.Data[i*r.U.Cols+j]
		}
	}
}
