package linalg

import (
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// with singular values in descending order, U of size m×r and V of size
// n×r where r = min(m, n).
type SVDResult struct {
	U *Matrix   // left singular vectors, one per column
	S []float64 // singular values, descending
	V *Matrix   // right singular vectors, one per column
}

// jacobiMaxSweeps bounds the number of one-sided Jacobi sweeps. Typical
// matrices converge in well under 30 sweeps; the bound only guards
// against pathological input.
const jacobiMaxSweeps = 60

// SVD computes a thin singular value decomposition of a using one-sided
// Jacobi rotations. Jacobi SVD is slower than Golub–Kahan for large
// matrices but simple, unconditionally convergent and highly accurate —
// exactly the trade-off the paper attributes to full SVD when motivating
// the IKA fast path.
func SVD(a *Matrix) SVDResult {
	m, n := a.Rows, a.Cols
	if m >= n {
		return svdTall(a.Clone())
	}
	// For wide matrices decompose the transpose and swap U/V.
	r := svdTall(a.T())
	return SVDResult{U: r.V, S: r.S, V: r.U}
}

// svdTall runs one-sided Jacobi on a tall (m ≥ n) matrix, destroying w.
func svdTall(w *Matrix) SVDResult {
	m, n := w.Rows, w.Cols
	v := Identity(n)
	if n == 0 {
		return SVDResult{U: NewMatrix(m, 0), S: nil, V: v}
	}

	// Frobenius-based convergence threshold for off-diagonal inner
	// products.
	var fro float64
	for _, x := range w.Data {
		fro += x * x
	}
	eps := 1e-15 * fro
	if eps == 0 {
		eps = 1e-300
	}

	colDot := func(p, q int) (app, aqq, apq float64) {
		for i := 0; i < m; i++ {
			wp := w.Data[i*n+p]
			wq := w.Data[i*n+q]
			app += wp * wp
			aqq += wq * wq
			apq += wp * wq
		}
		return
	}

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				app, aqq, apq := colDot(p, q)
				if apq*apq <= eps*1e-4 || (app == 0 && aqq == 0) {
					continue
				}
				// Skip rotations that cannot matter numerically.
				if math.Abs(apq) <= 1e-15*math.Sqrt(app*aqq) {
					continue
				}
				converged = false
				// Compute the Jacobi rotation that annihilates the
				// (p,q) entry of WᵀW.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Apply to columns p, q of W and V.
				for i := 0; i < m; i++ {
					wp := w.Data[i*n+p]
					wq := w.Data[i*n+q]
					w.Data[i*n+p] = c*wp - s*wq
					w.Data[i*n+q] = s*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.Data[i*n+p]
					vq := v.Data[i*n+q]
					v.Data[i*n+p] = c*vp - s*vq
					v.Data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if converged {
			break
		}
	}

	// Column norms are the singular values; normalized columns form U.
	s := make([]float64, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			x := w.Data[i*n+j]
			norm += x * x
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Data[i*n+j] = w.Data[i*n+j] / norm
			}
		} else {
			// Zero singular value: leave the U column zero; it is
			// completed to an orthonormal basis only if a caller needs
			// it, which FUNNEL does not.
			u.Data[j*n+j%n] = 0
		}
	}

	// Sort descending by singular value, permuting U and V columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	ss := make([]float64, n)
	us := NewMatrix(m, n)
	vs := NewMatrix(n, n)
	for dst, src := range idx {
		ss[dst] = s[src]
		for i := 0; i < m; i++ {
			us.Data[i*n+dst] = u.Data[i*n+src]
		}
		for i := 0; i < n; i++ {
			vs.Data[i*n+dst] = v.Data[i*n+src]
		}
	}
	return SVDResult{U: us, S: ss, V: vs}
}

// TopLeftSingularVectors returns the first k left singular vectors of a
// as the columns of an a.Rows×k matrix. It panics if k exceeds
// min(a.Rows, a.Cols).
func TopLeftSingularVectors(a *Matrix, k int) *Matrix {
	r := SVD(a)
	if k > len(r.S) {
		panic("linalg: k exceeds rank bound")
	}
	out := NewMatrix(a.Rows, k)
	for j := 0; j < k; j++ {
		for i := 0; i < a.Rows; i++ {
			out.Data[i*k+j] = r.U.Data[i*r.U.Cols+j]
		}
	}
	return out
}
