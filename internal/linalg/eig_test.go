package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// applyTridiag multiplies the tridiagonal matrix (d, e) by v.
func applyTridiag(d, e, v []float64) []float64 {
	n := len(d)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = d[i] * v[i]
		if i > 0 {
			out[i] += e[i-1] * v[i-1]
		}
		if i < n-1 {
			out[i] += e[i] * v[i+1]
		}
	}
	return out
}

func TestTridiagEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := TridiagEig([]float64{2, 2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector for 3 is (1,1)/√2 up to sign.
	v0 := vecs.Col(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-12 || math.Abs(v0[0]-v0[1]) > 1e-12 {
		t.Fatalf("v0 = %v", v0)
	}
}

func TestTridiagEigResidualAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(20)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 5
		}
		for i := range e {
			e[i] = rng.NormFloat64() * 5
		}
		vals, vecs, err := TridiagEig(d, e)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			vj := vecs.Col(j)
			tv := applyTridiag(d, e, vj)
			for i := range tv {
				if math.Abs(tv[i]-vals[j]*vj[i]) > 1e-8*(1+math.Abs(vals[j])) {
					t.Fatalf("trial %d: residual at eigpair %d component %d", trial, j, i)
				}
			}
		}
		orthonormalColumns(t, vecs, 1e-9)
		for j := 1; j < n; j++ {
			if vals[j] > vals[j-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
	}
}

func TestTridiagEigTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 12
	d := make([]float64, n)
	e := make([]float64, n-1)
	var trace float64
	for i := range d {
		d[i] = rng.NormFloat64()
		trace += d[i]
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	vals, _, err := TridiagEig(d, e)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-9*(1+math.Abs(trace)) {
		t.Fatalf("trace %v != Σλ %v", trace, sum)
	}
}

func TestTridiagEigEdgeCases(t *testing.T) {
	vals, vecs, err := TridiagEig(nil, nil)
	if err != nil || len(vals) != 0 || vecs.Rows != 0 {
		t.Fatal("empty input should succeed with empty output")
	}
	vals, vecs, err = TridiagEig([]float64{7}, nil)
	if err != nil || vals[0] != 7 || vecs.At(0, 0) != 1 {
		t.Fatalf("1x1 case: vals=%v err=%v", vals, err)
	}
	if _, _, err := TridiagEig([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("mismatched subdiagonal length should error")
	}
}

func TestTridiagEigZeroSubdiagonal(t *testing.T) {
	// Already diagonal: eigenvalues are the diagonal, sorted.
	vals, vecs, err := TridiagEig([]float64{1, 5, 3}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-14 {
			t.Fatalf("vals = %v", vals)
		}
	}
	orthonormalColumns(t, vecs, 1e-12)
}

func TestSymEigResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			vj := vecs.Col(j)
			av := a.MulVec(vj)
			for i := range av {
				if math.Abs(av[i]-vals[j]*vj[i]) > 1e-7*(1+math.Abs(vals[j])) {
					t.Fatalf("trial %d eigpair %d residual too large", trial, j)
				}
			}
		}
		orthonormalColumns(t, vecs, 1e-8)
	}
}

func TestSymEigPSDNonNegative(t *testing.T) {
	// B·Bᵀ is positive semidefinite: all eigenvalues ≥ 0 (within tol).
	rng := rand.New(rand.NewSource(33))
	b := randMatrix(rng, 6, 4)
	g := b.Mul(b.T())
	vals, _, err := SymEig(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v < -1e-9 {
			t.Fatalf("PSD matrix has negative eigenvalue %v", v)
		}
	}
	// Rank ≤ 4, so the two smallest of six eigenvalues vanish.
	if vals[4] > 1e-9 || vals[5] > 1e-9 {
		t.Fatalf("rank deficiency not detected: %v", vals)
	}
}

func TestSymEigNonSquare(t *testing.T) {
	if _, _, err := SymEig(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square input should error")
	}
}
