package funnel

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// TestPublicAPISurface exercises the re-exported façade end to end the
// way a downstream user would: build a topology, feed a store through
// an agent, assess a change, and inspect the report — all through the
// root package only.
func TestPublicAPISurface(t *testing.T) {
	start := time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC)
	tp := NewTopology()
	store := NewStore(start, time.Minute)
	agent := NewAgent(store)
	rng := rand.New(rand.NewSource(5))

	const changeMin = 2*1440 + 300
	servers := []string{"api-0", "api-1", "api-2"}
	for i, srv := range servers {
		tp.Deploy("edge.api", srv)
		treated := i == 0
		seed := rng.Int63()
		agent.Track(KPIKey{Scope: ScopeServer, Entity: srv, Metric: "mem.util"},
			func(bin int) float64 {
				r := rand.New(rand.NewSource(seed + int64(bin)))
				v := 60 + 0.5*r.NormFloat64()
				if treated && bin >= changeMin {
					v += 8
				}
				return v
			})
	}
	agent.Run(3 * 1440)

	change := Change{
		ID: "api-up-1", Type: Upgrade, Service: "edge.api",
		Servers: servers[:1], At: start.Add(changeMin * time.Minute),
	}
	log := NewChangeLog()
	if err := log.Append(change); err != nil {
		t.Fatal(err)
	}

	assessor, err := NewAssessor(store, tp, Config{
		ServerMetrics: []string{"mem.util"},
		HistoryDays:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := log.Get("api-up-1")
	if !ok {
		t.Fatal("change log lost the change")
	}
	report, err := assessor.Assess(got)
	if err != nil {
		t.Fatal(err)
	}
	flagged := report.Flagged()
	if len(flagged) != 1 || flagged[0].Key.Entity != "api-0" {
		t.Fatalf("flagged = %+v", flagged)
	}
	if flagged[0].Verdict != ChangedBySoftware || flagged[0].ControlKind != ControlConcurrent {
		t.Fatalf("verdict/control = %v/%v", flagged[0].Verdict, flagged[0].ControlKind)
	}
	if d, ok := DetectionDelay(flagged[0], changeMin); !ok || d > 30 {
		t.Fatalf("delay = %d, %v", d, ok)
	}
}

// TestScorerFamilyViaFacade drives all three SST variants and the two
// baselines through the façade types.
func TestScorerFamilyViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 300)
	for i := range x {
		x[i] = 10 + 0.3*rng.NormFloat64()
		if i >= 150 {
			x[i] += 5
		}
	}
	scorers := []Scorer{
		NewClassicSST(SSTConfig{Normalize: true}),
		NewRobustSST(SSTConfig{Normalize: true, RobustFilter: true}),
		NewIKASST(SSTConfig{Normalize: true, RobustFilter: true}),
		NewCUSUM(),
		NewMRLS(),
	}
	for i, s := range scorers {
		scores := ScoreSeries(s, x)
		if len(scores) != len(x) {
			t.Fatalf("scorer %d: score length mismatch", i)
		}
	}
	det := NewDetector(NewIKASST(SSTConfig{Normalize: true, RobustFilter: true}), 1.6)
	dets := det.Detect(x)
	if len(dets) == 0 || dets[0].Kind != KindLevelShiftUp {
		t.Fatalf("detections = %+v", dets)
	}
}

// TestDiDViaFacade checks the DiD helpers.
func TestDiDViaFacade(t *testing.T) {
	tp := []float64{10, 10, 10}
	tq := []float64{14, 14, 14}
	cp := []float64{20, 20, 20}
	cq := []float64{20, 20, 20}
	np, nq, ncp, ncq := NormalizeDiDGroups(tp, tq, cp, cq)
	res, err := EstimateDiD(np, nq, ncp, ncq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Causal(0.5) {
		t.Fatalf("α = %v should be causal", res.Alpha)
	}
}

// TestWorkloadAndEvalViaFacade generates a tiny corpus and classifies
// a KPI through the façade.
func TestWorkloadAndEvalViaFacade(t *testing.T) {
	p := DefaultScenarioParams()
	p.Changes = 2
	p.HistoryDays = 2
	sc, err := GenerateScenario(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Cases) != 2 {
		t.Fatalf("cases = %d", len(sc.Cases))
	}
	keys := sc.Source.Keys()
	s, _ := sc.Source.Series(keys[0])
	_ = ClassifyKPI(s.Values) // must not panic on any class

	if _, err := GenerateRedisCase(struct {
		Seed                 int64
		ClassA, ClassB       int
		HistoryDays          int
		ShiftFraction        float64
		ChangeMinuteOfDay    int
		UnaffectedPerClassAB int
	}{1, 2, 2, 1, 0.4, 700, 4}); err != nil {
		t.Fatal(err)
	}
}

// TestCalibrateThresholdViaFacade checks the calibration helper.
func TestCalibrateThresholdViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	clean := make([][]float64, 2)
	for i := range clean {
		xs := make([]float64, 200)
		for j := range xs {
			xs[j] = rng.NormFloat64()
		}
		clean[i] = xs
	}
	thr, err := CalibrateThreshold(NewIKASST(SSTConfig{Normalize: true, RobustFilter: true}), clean, 0.999, 1.1)
	if err != nil || thr <= 0 {
		t.Fatalf("threshold = %v, err = %v", thr, err)
	}
}

// TestStreamingAndBatchHelpersViaFacade covers the online detector,
// batch assessment, change combining and snapshot round trip through
// the façade.
func TestStreamingAndBatchHelpersViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 300)
	for i := range x {
		x[i] = 5 + 0.4*rng.NormFloat64()
		if i >= 150 {
			x[i] += 6
		}
	}
	det := NewDetector(NewIKASST(SSTConfig{Normalize: true, RobustFilter: true}), 1.6)
	stream := NewStreamDetector(det)
	declared := false
	for _, v := range x {
		if _, ok := stream.Push(v); ok {
			declared = true
		}
	}
	if !declared {
		t.Fatal("stream never declared the shift")
	}

	a := Change{ID: "a", Type: ConfigChange, Service: "s", Servers: []string{"x"}, At: time.Now()}
	b := Change{ID: "b", Type: Upgrade, Service: "s", Servers: []string{"y"}, At: time.Now()}
	m, err := CombineChanges("ab", []Change{a, b})
	if err != nil || m.Type != Upgrade || len(m.Servers) != 2 {
		t.Fatalf("combine = %+v err=%v", m, err)
	}
}

// TestSnapshotViaFacade round-trips a store snapshot.
func TestSnapshotViaFacade(t *testing.T) {
	start := time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC)
	store := NewStore(start, time.Minute)
	key := KPIKey{Scope: ScopeServer, Entity: "s", Metric: "m"}
	store.Append(Measurement{Key: key, T: start, V: 7})
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadStoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := restored.Series(key)
	if !ok || s.Values[0] != 7 {
		t.Fatalf("restored = %+v ok=%v", s, ok)
	}
}

// TestFleetAndParallelViaFacade exercises the fleet and parallel
// scoring through the façade.
func TestFleetAndParallelViaFacade(t *testing.T) {
	fleet := NewFleet(nil)
	rng := rand.New(rand.NewSource(11))
	key := KPIKey{Scope: ScopeServer, Entity: "s1", Metric: "m"}
	fired := 0
	for i := 0; i < 400; i++ {
		v := 30 + 0.4*rng.NormFloat64()
		if i >= 200 {
			v += 8
		}
		if _, ok := fleet.Push(key, v); ok {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("fleet fired %d times", fired)
	}

	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	s := NewIKASST(SSTConfig{Normalize: true})
	a, b := ScoreSeries(s, x), ScoreSeriesParallel(s, x, 4)
	for i := range a {
		if a[i] != b[i] && !(a[i] != a[i] && b[i] != b[i]) {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}

	// Regression DiD agrees with the moment estimator via the façade.
	tp := []float64{1, 1, 1, 1}
	tq := []float64{4, 4, 4, 4}
	cp := []float64{9, 9, 9, 9}
	cq := []float64{9, 9, 9, 9}
	m, err := EstimateDiD(tp, tq, cp, cq)
	if err != nil {
		t.Fatal(err)
	}
	r, err := EstimateDiDRegression(tp, tq, cp, cq)
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha != 3 || r.Alpha-m.Alpha > 1e-9 || m.Alpha-r.Alpha > 1e-9 {
		t.Fatalf("α: moment %v vs regression %v", m.Alpha, r.Alpha)
	}
}

// TestTraceViaFacade round-trips a trace through the façade.
func TestTraceViaFacade(t *testing.T) {
	p := DefaultScenarioParams()
	p.Changes = 2
	p.HistoryDays = 1
	sc, err := GenerateScenario(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ExportTrace(sc)); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	source, _, log, _, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	if source.Len() != sc.Source.Len() || log.Len() != sc.Log.Len() {
		t.Fatal("trace round trip lost data")
	}
}

// TestExtraBaselinesViaFacade touches the WoW and PCA exports.
func TestExtraBaselinesViaFacade(t *testing.T) {
	w := NewWoW()
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 3*1440)
	for i := range x {
		x[i] = 100 + rng.NormFloat64()
	}
	if v := w.ScoreAt(x, len(x)-5); v < 0 {
		t.Fatalf("WoW score = %v", v)
	}
	p := NewPCA()
	series := [][]float64{make([]float64, 100), make([]float64, 100)}
	for i := 0; i < 100; i++ {
		series[0][i] = rng.NormFloat64()
		series[1][i] = rng.NormFloat64()
	}
	if _, err := p.ScoreMatrix(series, 80); err != nil {
		t.Fatal(err)
	}
}
