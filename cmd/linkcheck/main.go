// Command linkcheck validates the repository's markdown cross
// references offline: every inline link `[text](target)` in every
// tracked .md file must resolve. Relative targets must exist on disk,
// fragment targets (`#section`, `file.md#section`) must match a
// GitHub-style heading anchor in the referenced file, and http(s)
// targets are skipped — CI has no network and external liveness is not
// this tool's job. It walks the given roots (default ".") and prints
// one line per broken link:
//
//	linkcheck            # check every .md under the current directory
//	linkcheck docs extra.md
//
// Exit status is 1 when any link is broken, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links and images. Nested brackets and
// angle-bracket targets are out of scope — the repository uses neither.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings, whose text becomes the anchor.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: linkcheck [root ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		fs, err := collect(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		files = append(files, fs...)
	}
	broken := 0
	for _, f := range files {
		n, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		broken += n
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links in %d files\n", broken, len(files))
		os.Exit(1)
	}
}

// collect gathers the .md files under root (or root itself when it is
// a file), skipping dot-directories and testdata.
func collect(root string) ([]string, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{root}, nil
	}
	var files []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

// checkFile validates every link in one markdown file and returns the
// broken count.
func checkFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	broken := 0
	for _, m := range linkRe.FindAllStringSubmatch(stripCode(string(data)), -1) {
		target := m[1]
		if why := checkTarget(path, target); why != "" {
			fmt.Printf("%s: broken link %q: %s\n", path, target, why)
			broken++
		}
	}
	return broken, nil
}

// stripCode blanks out fenced and inline code spans so example links
// inside code blocks are not validated.
func stripCode(s string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.SplitAfter(s, "\n") {
		trim := strings.TrimSpace(line)
		if strings.HasPrefix(trim, "```") || strings.HasPrefix(trim, "~~~") {
			inFence = !inFence
			b.WriteString("\n")
			continue
		}
		if inFence {
			b.WriteString("\n")
			continue
		}
		// Blank inline code spans in place.
		for {
			i := strings.IndexByte(line, '`')
			if i < 0 {
				break
			}
			j := strings.IndexByte(line[i+1:], '`')
			if j < 0 {
				break
			}
			line = line[:i] + strings.Repeat(" ", j+2) + line[i+1+j+1:]
		}
		b.WriteString(line)
	}
	return b.String()
}

// checkTarget resolves one link target relative to the file that holds
// it, returning an empty string when it is fine and the reason
// otherwise.
func checkTarget(from, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not checked offline
	}
	file, frag, _ := strings.Cut(target, "#")
	dest := from
	if file != "" {
		dest = filepath.Join(filepath.Dir(from), filepath.FromSlash(file))
		info, err := os.Stat(dest)
		if err != nil {
			return "file does not exist"
		}
		if info.IsDir() && frag != "" {
			return "fragment on a directory link"
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.EqualFold(filepath.Ext(dest), ".md") {
		return "" // fragments into non-markdown files are not checkable
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		return "cannot read fragment target"
	}
	for _, h := range headingRe.FindAllStringSubmatch(stripCode(string(data)), -1) {
		if anchor(h[1]) == strings.ToLower(frag) {
			return ""
		}
	}
	return fmt.Sprintf("no heading matches #%s", frag)
}

// anchor converts a heading to its GitHub-style anchor: lowercase,
// punctuation dropped, spaces to hyphens.
func anchor(heading string) string {
	// Drop inline markup the anchor algorithm ignores.
	heading = strings.NewReplacer("`", "", "*", "", "_", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r)):
			b.WriteRune(r)
		}
	}
	return b.String()
}
