// Command doclint enforces the repository's documentation convention:
// every exported declaration must carry a godoc comment that begins
// with the name it documents (the same shape `go doc` and pkgsite
// render). It walks the named packages' non-test sources with go/ast —
// no analysis framework, no network — and prints one line per
// violation:
//
//	doclint . ./internal/... ./cmd/... ./examples/...
//
// Arguments are package directories; a trailing /... walks every
// subdirectory containing Go files. Exit status is 1 when any
// violation is found, so CI can gate on it.
// Method receivers, unexported declarations and generated files are
// skipped; a doc comment on the factored declaration group
// (`const (...)`, `var (...)`) covers its members.
//
// One structural rule rides along: a package that declares an exported
// detector implementation — a type with ScoreAt, Config and Name
// methods, the detect.Detector contract — must carry a package-level
// doc comment. Detectors are the repo's plugin surface; their packages
// are where godoc readers land first, and an undocumented one would
// ship a bake-off row nobody can interpret.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint <package-dir>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := 0
	for _, arg := range flag.Args() {
		dirs, err := expand(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			n, err := lintDir(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
				os.Exit(2)
			}
			bad += n
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented or misdocumented exported declarations\n", bad)
		os.Exit(1)
	}
}

// expand resolves one argument to package directories: a plain
// directory maps to itself, and a `dir/...` pattern walks to every
// subdirectory containing Go files (skipping hidden and testdata
// directories, like the go tool).
func expand(arg string) ([]string, error) {
	root, rec := strings.CutSuffix(strings.TrimSuffix(arg, "/"), "/...")
	if !rec {
		return []string{root}, nil
	}
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		dir := filepath.Dir(path)
		if strings.HasSuffix(path, ".go") && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// lintDir checks every non-test Go file in one directory and returns
// the violation count.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			bad += lintFile(fset, filepath.ToSlash(path), file)
		}
		bad += lintDetectorDocs(fset, pkg)
	}
	return bad, nil
}

// detectorMethods is the detect.Detector contract: a type exposing all
// three is a detector implementation, whether or not its package
// imports the detect package.
var detectorMethods = []string{"ScoreAt", "Config", "Name"}

// lintDetectorDocs enforces the detector-package rule: every package
// declaring an exported type with the full ScoreAt/Config/Name method
// set must have a package-level doc comment.
func lintDetectorDocs(fset *token.FileSet, pkg *ast.Package) int {
	hasPkgDoc := false
	declared := map[string]token.Pos{} // exported types declared here
	methods := map[string]map[string]bool{}
	for _, file := range pkg.Files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			hasPkgDoc = true
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				recv := receiverName(d.Recv)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				if methods[recv] == nil {
					methods[recv] = map[string]bool{}
				}
				methods[recv][d.Name.Name] = true
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					if s, ok := spec.(*ast.TypeSpec); ok && ast.IsExported(s.Name.Name) {
						declared[s.Name.Name] = s.Pos()
					}
				}
			}
		}
	}
	if hasPkgDoc {
		return 0
	}
	bad := 0
	for name, pos := range declared {
		complete := true
		for _, m := range detectorMethods {
			if !methods[name][m] {
				complete = false
				break
			}
		}
		if complete {
			p := fset.Position(pos)
			fmt.Printf("%s:%d: package %s declares detector implementation %s but has no package doc comment\n",
				filepath.ToSlash(p.Filename), p.Line, pkg.Name, name)
			bad++
		}
	}
	return bad
}

// receiverName extracts the receiver's base type name from a method's
// receiver list, unwrapping pointers and type parameters.
func receiverName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// lintFile reports each exported declaration in one parsed file whose
// doc comment is missing or does not start with the declared name.
func lintFile(fset *token.FileSet, path string, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name, why string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s %s %s\n", path, p.Line, kind, name, why)
		bad++
	}
	check := func(pos token.Pos, kind, name string, doc *ast.CommentGroup) {
		if !ast.IsExported(name) {
			return
		}
		if doc == nil || strings.TrimSpace(doc.Text()) == "" {
			report(pos, kind, name, "has no doc comment")
			return
		}
		first := strings.Fields(doc.Text())[0]
		// "A Foo ..." / "An Foo ..." / "The Foo ..." are accepted godoc
		// openers alongside the plain "Foo ...".
		words := strings.Fields(doc.Text())
		if first == "A" || first == "An" || first == "The" || first == "Deprecated:" {
			if len(words) > 1 {
				first = words[1]
			}
		}
		if strings.TrimRight(first, ".,:;") != name {
			report(pos, kind, name, fmt.Sprintf("doc comment starts %q, want the name %q", first, name))
		}
	}

	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			kind := "function"
			if d.Recv != nil {
				kind = "method"
				// Methods on unexported receivers (usually interface
				// plumbing like Error/Timeout) are not rendered by
				// godoc and need no comment.
				if !ast.IsExported(receiverName(d.Recv)) {
					continue
				}
			}
			check(d.Pos(), kind, d.Name.Name, d.Doc)
		case *ast.GenDecl:
			kind := map[token.Token]string{
				token.CONST: "const", token.VAR: "var", token.TYPE: "type",
			}[d.Tok]
			if kind == "" {
				continue // imports
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					check(s.Pos(), kind, s.Name.Name, doc)
				case *ast.ValueSpec:
					// A group doc (`// Exit codes.` above `const (...)`)
					// or a per-spec doc both satisfy the convention for
					// value members; only fully undocumented exported
					// values are flagged.
					if s.Doc != nil || s.Comment != nil || d.Doc != nil {
						continue
					}
					for _, name := range s.Names {
						if ast.IsExported(name.Name) {
							report(name.Pos(), kind, name.Name, "has no doc comment")
						}
					}
				}
			}
		}
	}
	return bad
}
