package main

import (
	"repro/internal/detect"
	"repro/internal/sst"
)

// calibrate wraps detect.Calibrate with the evaluation's standard
// quantile and margin.
func calibrate(scorer sst.Scorer, clean [][]float64) (float64, error) {
	return detect.Calibrate(scorer, clean, 0.999, 1.1)
}

// firstDetection runs the persistence-rule detector and returns the
// wall-clock delay of the first detection relative to trueStart
// (or the raw availability bin when trueStart < 0, used for
// false-positive counting on clean series).
func firstDetection(scorer sst.Scorer, threshold float64, xs []float64, trueStart int) (int, bool) {
	det := detect.New(scorer, threshold)
	d, ok := det.First(xs)
	if !ok {
		return 0, false
	}
	if trueStart < 0 {
		return d.AvailableAt, true
	}
	delay := d.AvailableAt - trueStart
	if delay < 0 {
		delay = 0
	}
	return delay, true
}
