package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/eval"
	"repro/internal/stats"
)

// csvDir is set by the -csv flag; empty disables CSV output.
var csvDir string

// writeCSV writes one CSV file into csvDir (no-op when disabled).
func writeCSV(name string, header []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", filepath.Join(csvDir, name))
	return nil
}

// table1CSV renders the accuracy results.
func table1CSV(results []*eval.Result) error {
	header := []string{"method", "kpi_type", "total", "precision", "recall", "tnr", "accuracy"}
	var rows [][]string
	for _, res := range results {
		for _, kt := range []stats.KPIType{stats.Seasonal, stats.Stationary, stats.Variable} {
			c := res.ByType[kt]
			rows = append(rows, []string{
				res.Method, kt.String(),
				strconv.FormatFloat(c.Total(), 'f', 0, 64),
				fmtRatio(c.Precision()), fmtRatio(c.Recall()),
				fmtRatio(c.TNR()), fmtRatio(c.Accuracy()),
			})
		}
	}
	return writeCSV("table1.csv", header, rows)
}

// fig5CSV renders the delay CCDF points.
func fig5CSV(results []*eval.Result) error {
	header := []string{"method", "delay_minutes", "ccdf"}
	var rows [][]string
	for _, res := range results {
		for _, pt := range res.DelayCCDF() {
			rows = append(rows, []string{
				res.Method,
				strconv.FormatFloat(pt.X, 'f', 0, 64),
				strconv.FormatFloat(pt.P, 'f', 4, 64),
			})
		}
	}
	return writeCSV("fig5_ccdf.csv", header, rows)
}

// fmtRatio prints a metric with four decimals, empty for NaN.
func fmtRatio(v float64) string {
	if v != v {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}
