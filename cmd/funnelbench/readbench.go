// The -run-read-bench mode: the assessment read-path suite committed as
// BENCH_4.json. It measures the two ways a window leaves the store —
// the legacy flat full-series copy (Series + slice) and the chunked
// copy-free RangeInto — plus the end-to-end assess cost over each, and
// the resident-bytes compression of chunked storage at 30-day
// retention. The -bench-check gates are same-run ratios, so they hold
// on any host speed:
//
//   - RangeInto bytes/op ≤ ½ the flat copy's (the ≥2× read-allocation
//     reduction the chunked layout exists for);
//   - chunked-store assess ns/op ≤ 1.05× the flat-source assess (the
//     windowed read path may not tax the pipeline);
//   - chunked resident bytes ≤ ½ the flat []float64 footprint on the
//     30-day count-KPI corpus;
//   - RangeInto stays 0 allocs/op steady-state (alloc guard vs the
//     committed baseline, like every guarded entry).
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/changelog"
	"repro/internal/funnel"
	"repro/internal/monitor"
	"repro/internal/timeseries"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Read-path gate factors (see the package comment above).
const (
	readAllocFactor  = 0.5  // RangeInto B/op vs flat-copy B/op
	assessNsFactor   = 1.05 // chunked assess ns vs flat assess ns
	residentFactor   = 0.5  // chunked resident bytes vs flat bytes
	retentionDays    = 30   // store depth for the read + resident entries
	readBenchServers = 8
)

// seriesOnly narrows a store to its flat Series face, so an assessor
// over it takes the full-copy path while reading identical bits.
type seriesOnly struct{ st *monitor.Store }

func (s seriesOnly) Series(key topo.KPIKey) (*timeseries.Series, bool) { return s.st.Series(key) }

// countValue is a deterministic integer count KPI bin — a diurnal
// request-rate shape with Poisson-like jitter. Counts are the paper's
// bread-and-butter KPIs (page views, transactions, error counts) and
// the reason XOR compression pays: integer float64s share long mantissa
// tails of zeros.
func countValue(rng *rand.Rand, bin int) float64 {
	lambda := 800 + 400*math.Sin(2*math.Pi*float64(bin%1440)/1440)
	return math.Round(lambda + 40*rng.NormFloat64())
}

// retentionStore fills a chunked store with retentionDays of 1-minute
// count bins for readBenchServers server KPIs.
func retentionStore(epoch time.Time) *monitor.Store {
	st := monitor.NewStore(epoch, time.Minute)
	bins := retentionDays * 24 * 60
	batch := make([]monitor.Measurement, 0, 512)
	for s := 0; s < readBenchServers; s++ {
		key := topo.KPIKey{Scope: topo.ScopeServer, Entity: fmt.Sprintf("srv-%d", s), Metric: "req.count"}
		rng := rand.New(rand.NewSource(int64(s) + 7))
		for bin := 0; bin < bins; bin++ {
			batch = append(batch, monitor.Measurement{Key: key, T: epoch.Add(time.Duration(bin) * time.Minute), V: countValue(rng, bin)})
			if len(batch) == cap(batch) {
				st.AppendBatch(batch)
				batch = batch[:0]
			}
		}
	}
	st.AppendBatch(batch)
	return st
}

// runReadBenchSuite measures the suite; with checkPath non-empty it
// applies the ratio gates and the per-entry baseline comparison instead
// of writing outPath.
func runReadBenchSuite(iters int, outPath, checkPath string) error {
	if iters < 10 {
		iters = 10
	}
	fmt.Printf("read-path suite: %d iterations per read entry, %d-day retention × %d KPIs\n",
		iters, retentionDays, readBenchServers)
	cal := calibrateNs()
	fmt.Printf("host calibration kernel: %.0f ns/op\n", cal)

	var entries []benchEntry
	record := func(name string, n int, guard bool, st benchStats) {
		entries = append(entries, benchEntry{Name: name, Iters: n, AllocGuard: guard, After: st})
		fmt.Printf("  %-30s %12.0f ns/op %10.1f allocs/op %12.0f B/op\n",
			name, st.NsPerOp, st.AllocsPerOp, st.BytesPerOp)
	}
	byName := func(name string) benchStats {
		for _, e := range entries {
			if e.Name == name {
				return e.After
			}
		}
		panic("readbench: no entry " + name)
	}

	// Read path: one assessment-sized window (two days of history plus
	// detection margins ≈ what funnel fetches per KPI) out of the
	// 30-day retention, flat copy vs RangeInto.
	epoch := time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC)
	st := retentionStore(epoch)
	stats := st.Stats()
	winBins := 2*24*60 + 200
	at := epoch.Add(time.Duration(stats.LastBin-300) * time.Minute)
	from := at.Add(-time.Duration(winBins) * time.Minute)
	keys := st.Keys()
	ki := 0
	record("read/flat-full-copy", iters, false, measure(iters, func() {
		s, ok := st.Series(keys[ki%len(keys)])
		if !ok {
			panic("readbench: series lost")
		}
		lo, _ := s.IndexOf(from)
		hi, _ := s.IndexOf(at)
		_ = s.Values[lo:hi]
		ki++
	}))
	ki = 0
	dst := make([]float64, 0, winBins+8)
	record("read/chunked-range-into", iters, true, measure(iters, func() {
		vals, _, ok := st.RangeInto(keys[ki%len(keys)], from, at, dst)
		if !ok {
			panic("readbench: window lost")
		}
		dst = vals[:0]
		ki++
	}))

	// Resident bytes at 30-day retention: the chunked store's sealed
	// chunks + tails versus the flat []float64 layout it replaced.
	record("mem/flat-resident-bytes", 1, false, benchStats{BytesPerOp: float64(stats.Bins) * 8})
	record("mem/chunked-resident-bytes", 1, false, benchStats{BytesPerOp: float64(stats.ApproxBytes)})
	ratio := float64(stats.Bins) * 8 / float64(stats.ApproxBytes)
	fmt.Printf("  compression ratio at %d-day retention: %.1f× (%d chunks)\n", retentionDays, ratio, stats.Chunks)

	// End-to-end assess over the same store bits: the windowed chunked
	// path versus an assessor whose source only offers full copies.
	p := workload.DefaultParams()
	p.Changes = 4
	p.HistoryDays = 2
	sc, err := workload.Generate(p)
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	ast := monitor.NewStore(sc.Start, sc.Step)
	for _, key := range sc.Source.Keys() {
		s, _ := sc.Source.Series(key)
		for i, v := range s.Values {
			if !math.IsNaN(v) {
				ast.Append(monitor.Measurement{Key: key, T: s.Start.Add(time.Duration(i) * s.Step), V: v})
			}
		}
	}
	cfg := funnel.Config{
		ServerMetrics:   workload.ServerMetrics(),
		InstanceMetrics: workload.InstanceMetrics(),
		HistoryDays:     2,
		AssessWorkers:   1, // serial: the ratio gate wants minimal scheduler noise
	}
	chunked, err := funnel.NewAssessor(ast, sc.Topo, cfg)
	if err != nil {
		return fmt.Errorf("new assessor: %w", err)
	}
	flat, err := funnel.NewAssessor(seriesOnly{ast}, sc.Topo, cfg)
	if err != nil {
		return fmt.Errorf("new assessor: %w", err)
	}
	changes := make([]changelog.Change, 0, len(sc.Cases))
	for _, cs := range sc.Cases {
		changes = append(changes, cs.Change)
	}
	assessIters := iters / 5
	if assessIters < 6 {
		assessIters = 6
	}
	assessEntry := func(name string, a *funnel.Assessor) {
		ci := 0
		// Best of two measurement passes: assess wall-clock only ever
		// inflates under GC or scheduler interference, so the min is the
		// honest figure for a ratio gate on a shared host.
		run := func() benchStats {
			return measure(assessIters, func() {
				if _, err := a.Assess(changes[ci%len(changes)]); err != nil {
					panic(err)
				}
				ci++
			})
		}
		a1, a2 := run(), run()
		if a2.NsPerOp < a1.NsPerOp {
			a1 = a2
		}
		record(name, assessIters, false, a1)
	}
	assessEntry("assess/flat-source", flat)
	assessEntry("assess/chunked-store", chunked)

	// Same-run ratio gates, reported on every run and enforced in check
	// mode. They compare entries measured seconds apart on the same
	// host, so no calibration or headroom is needed.
	readB := byName("read/chunked-range-into").BytesPerOp / byName("read/flat-full-copy").BytesPerOp
	assessNs := byName("assess/chunked-store").NsPerOp / byName("assess/flat-source").NsPerOp
	resident := byName("mem/chunked-resident-bytes").BytesPerOp / byName("mem/flat-resident-bytes").BytesPerOp
	fmt.Printf("  RangeInto B/op vs flat copy: %.3f× (gate ≤ %.2f)\n", readB, readAllocFactor)
	fmt.Printf("  chunked assess ns vs flat:   %.3f× (gate ≤ %.2f)\n", assessNs, assessNsFactor)
	fmt.Printf("  resident bytes vs flat:      %.3f× (gate ≤ %.2f)\n", resident, residentFactor)

	if checkPath != "" {
		if readB > readAllocFactor {
			return fmt.Errorf("RangeInto B/op is %.3f× the flat copy — above the %.2f gate", readB, readAllocFactor)
		}
		if assessNs > assessNsFactor {
			return fmt.Errorf("chunked assess is %.3f× the flat-source assess — above the %.2f gate", assessNs, assessNsFactor)
		}
		if resident > residentFactor {
			return fmt.Errorf("chunked resident bytes are %.3f× the flat layout — above the %.2f gate", resident, residentFactor)
		}
		return checkAgainstBaseline(checkPath, cal, entries)
	}
	return writeBenchFile(outPath, "funnel-read-bench/v1", cal, entries)
}
