package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/baselines"
	"repro/internal/edivisive"
	"repro/internal/eval"
	"repro/internal/funnel"
	"repro/internal/sst"
	"repro/internal/workload"
)

// The bake-off corpus is pinned — seed, size and trap mix are part of
// the experiment definition, not tunable via the sizing flags — so the
// committed table regenerates byte-identically (timing column aside) on
// any machine and CI can fail on drift.
const (
	bakeoffChanges = 48
	bakeoffHistory = 3 // days
	bakeoffSeed    = 7
	bakeoffTraps   = 0.25
)

// bakeoffParams builds the pinned corpus parameters: the standard
// three-class KPI mix plus trend/long-range-dependence traps on a
// quarter of the no-effect cases.
func bakeoffParams() workload.Params {
	p := workload.DefaultParams()
	p.Changes = bakeoffChanges
	p.HistoryDays = bakeoffHistory
	p.Seed = bakeoffSeed
	p.TrapFraction = bakeoffTraps
	return p
}

// bakeoffEntry pairs one table row with its method and the scorer whose
// per-window cost fills the ns/op column.
type bakeoffEntry struct {
	detector string // registry name shown in the Detector column
	stage    string // causality stage label: "did", "bsts", or "—"
	method   eval.Method
	scorer   sst.Scorer
}

// bakeoffRows generates the corpus, calibrates the score-only
// baselines on its pre-change stretches, evaluates every entry, and
// measures per-window cost.
func bakeoffRows() ([]eval.BakeoffRow, error) {
	sc, err := workload.Generate(bakeoffParams())
	if err != nil {
		return nil, err
	}

	ika := sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true})
	cusum := &baselines.CUSUM{Window: 60, Bootstraps: 300, MinRelRange: 2}
	mrls := baselines.NewMRLS()
	ediv := edivisive.New()

	cthr, err := eval.CalibrateOnScenario(sc, cusum, 24, 0.999, 1.1)
	if err != nil {
		return nil, fmt.Errorf("calibrating CUSUM: %w", err)
	}
	mthr, err := eval.CalibrateOnScenario(sc, mrls, 24, 0.999, 1.1,
		workload.MetricMemUtil, workload.MetricQueueLen)
	if err != nil {
		return nil, fmt.Errorf("calibrating MRLS: %w", err)
	}
	ethr, err := eval.CalibrateOnScenario(sc, ediv, 24, 0.999, 1.1)
	if err != nil {
		return nil, fmt.Errorf("calibrating E-divisive: %w", err)
	}

	entries := []bakeoffEntry{
		// FUNNEL reference: SST detection + classical DiD causality.
		{"sst", "did", &eval.FunnelMethod{Label: "sst/did",
			Config: funnel.Config{HistoryDays: bakeoffHistory}}, ika},
		// The Bayesian alternative: same detection, BSTS causality.
		{"sst", "bsts", &eval.FunnelMethod{Label: "sst/bsts",
			Config: funnel.Config{HistoryDays: bakeoffHistory, Causality: "bsts"}}, ika},
		// Improved SST with no causality stage at all.
		{"sst", "—", &eval.FunnelMethod{Label: "sst/none",
			Config: funnel.Config{HistoryDays: bakeoffHistory, SkipDiD: true}}, ika},
		{"cusum", "—", &eval.BaselineMethod{Label: "cusum",
			Scorer: cusum, Threshold: cthr, Persistence: 7}, cusum},
		{"mrls", "—", &eval.BaselineMethod{Label: "mrls",
			Scorer: mrls, Threshold: mthr, Persistence: 1}, mrls},
		{"edivisive", "—", &eval.BaselineMethod{Label: "edivisive",
			Scorer: ediv, Threshold: ethr, Persistence: 7}, ediv},
	}

	methods := make([]eval.Method, len(entries))
	for i, e := range entries {
		methods[i] = e.method
	}
	results, err := eval.Run(sc, methods, eval.Options{NegativeWeight: 86})
	if err != nil {
		return nil, err
	}

	// Per-window cost on a bursty series (the dominant and costliest KPI
	// class), one measurement per distinct scorer.
	series := workload.Render(workload.NewVariable(100, 0.3, bakeoffSeed), 400)
	timing := map[sst.Scorer]time.Duration{}
	rows := make([]eval.BakeoffRow, len(entries))
	for i, e := range entries {
		per, ok := timing[e.scorer]
		if !ok {
			c := e.scorer.Config()
			t0 := c.PastSpan()
			span := len(series) - c.FutureSpan() - t0
			j := 0
			per = eval.TimePerWindow(func() {
				e.scorer.ScoreAt(series, t0+j%span)
				j++
			}, 120)
			timing[e.scorer] = per
		}
		rows[i] = eval.BakeoffRow{
			Detector:        e.detector,
			Stage:           e.stage,
			Overall:         results[i].Overall(),
			MedianDelayBins: results[i].DelayQuantile(0.5),
			PerWindow:       per,
		}
	}
	return rows, nil
}

// runBakeoff regenerates the bake-off table. In write mode it splices
// the table between the markers in docPath; in check mode it compares
// the regenerated table against the committed one with the volatile
// ns/op column masked, exiting non-zero on drift — the CI contract that
// keeps EXPERIMENTS.md honest.
func runBakeoff(docPath string, check bool) error {
	rows, err := bakeoffRows()
	if err != nil {
		return err
	}
	table := eval.RenderBakeoff(rows)

	raw, err := os.ReadFile(docPath)
	if err != nil {
		return err
	}
	doc := string(raw)

	if check {
		committed, err := eval.ExtractBakeoff(doc)
		if err != nil {
			return err
		}
		got := eval.MaskBakeoffVolatile("\n" + table)
		want := eval.MaskBakeoffVolatile(committed)
		if got != want {
			return fmt.Errorf("bake-off table in %s drifted from the generated corpus:\n--- committed ---%s--- regenerated ---%s"+
				"run `go run ./cmd/funnelbench -run-bakeoff` and commit the result", docPath, want, got)
		}
		fmt.Printf("bake-off table in %s matches the regenerated corpus (%d rows)\n", docPath, len(rows))
		return nil
	}

	spliced, err := eval.SpliceBakeoff(doc, table)
	if err != nil {
		return err
	}
	if err := os.WriteFile(docPath, []byte(spliced), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bake-off rows into %s\n", len(rows), docPath)
	fmt.Print(table)
	return nil
}
