// The -run-ingest-bench mode: an end-to-end ingest-throughput suite
// whose results are committed as BENCH_3.json at the repo root. Each
// entry drives a fleet of concurrent publishers over loopback TCP into
// a live IngestServer and measures wall-clock nanoseconds per stored
// measurement, varying the two axes the sharded-store work targets:
// the wire format (one 0x01 frame per measurement vs 0x04 batch
// frames) and the store's lock striping (1 shard — the old
// single-mutex store — vs StoreShards stripes). The -bench-check mode
// replays the suite against the committed baseline and additionally
// enforces the headline speedup: the batched, sharded path must move a
// measurement at least ingestSpeedupFloor× faster than the
// single-frame single-mutex baseline, measured fresh in the same run
// so host noise cancels.
package main

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/changelog"
	"repro/internal/faultfs"
	"repro/internal/funnel"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/topo"
)

// ingestSpeedupFloor is the required end-to-end advantage of the
// batch-frame + sharded-store path over the single-frame single-mutex
// baseline, per measurement, in the persistent (write-ahead logged)
// configuration funnelserve -data runs in production. Both sides are
// measured in the same process moments apart, so the ratio is stable
// even on noisy CI hosts.
const ingestSpeedupFloor = 4.0

// ingestPublishers is the synthetic fleet's concurrency: enough
// publishers to contend on a single-mutex store, few enough that a
// small CI host is not pure scheduler churn.
const ingestPublishers = 4

// telemetryOverheadCap bounds what the full observability surface —
// structured logging wired, the metrics-history ring self-scraping on a
// fast tick — may add to the batched sharded ingest path, measured in
// the same run so host noise cancels. Telemetry is supposed to be an
// always-on default, which it can only be if it stays within noise of
// free.
const telemetryOverheadCap = 1.05

// faultfsOverheadCap bounds what threading every disk operation through
// the faultfs.FS seam — with a zero-fault plan installed, the
// configuration a paranoid operator might run in production — may add
// to the persistent batched sharded ingest path, measured in the same
// run so host noise cancels. The abstraction exists so fault injection
// costs nothing when unused; this gate keeps that true.
const faultfsOverheadCap = 1.05

// ingestCase is one (wire format × striping × persistence)
// configuration.
type ingestCase struct {
	name      string
	shards    int
	batch     int  // measurements per 0x04 frame; ≤1 = one 0x01 frame each
	wal       bool // write-ahead persistence on (funnelserve -data)
	telemetry bool // full observability: logger wired, history ring scraping
	faultfs   bool // persist through a zero-plan faultfs.FaultFS wrapper
}

// ingestCases covers the axes. The in-memory block maps the (frame ×
// striping) plane; the wal pair measures the production funnelserve
// -data configuration, where the single-frame path pays one WAL write
// per measurement and the batch path one per shard-run — the pair the
// speedup gate anchors on.
func ingestCases() []ingestCase {
	batch := 1024 // accumulation per PublishBatch call; frames pack to the cap
	return []ingestCase{
		{"ingest/single-frame-1shard", 1, 0, false, false, false},
		{"ingest/single-frame-sharded", monitor.StoreShards, 0, false, false, false},
		{"ingest/batch-frame-1shard", 1, batch, false, false, false},
		{"ingest/batch-frame-sharded", monitor.StoreShards, batch, false, false, false},
		{"ingest/batch-frame-sharded-telemetry", monitor.StoreShards, batch, false, true, false},
		{"ingest/wal-single-frame-1shard", 1, 0, true, false, false},
		{"ingest/wal-batch-frame-sharded", monitor.StoreShards, batch, true, false, false},
		{"ingest/wal-batch-frame-sharded-faultfs", monitor.StoreShards, batch, true, false, true},
	}
}

// ingestKeys pre-builds one publisher's key set so key formatting is
// excluded from the timed region. Keys are spread across entities so
// they stripe over every shard.
func ingestKeys(pub, perPub int) []topo.KPIKey {
	const distinct = 32
	keys := make([]topo.KPIKey, distinct)
	for i := range keys {
		keys[i] = topo.KPIKey{
			Scope:  topo.ScopeServer,
			Entity: fmt.Sprintf("srv-%d-%d", pub, i),
			Metric: "bench.qps",
		}
	}
	out := make([]topo.KPIKey, perPub)
	for i := range out {
		out[i] = keys[i%distinct]
	}
	return out
}

// measureIngest runs one configuration: ingestPublishers concurrent
// publishers push perPub measurements each into a fresh store behind a
// loopback IngestServer, and the clock stops when the store has
// ingested every one. It returns wall-clock ns per measurement.
func measureIngest(c ingestCase, perPub int) (benchStats, error) {
	start := time.Unix(0, 0).UTC()
	var store *monitor.Store
	if c.wal {
		dir, err := os.MkdirTemp("", "funnelbench-wal-")
		if err != nil {
			return benchStats{}, err
		}
		defer os.RemoveAll(dir)
		// Background fsync and auto-compaction off: the entry measures
		// the logging path itself, not periodic maintenance.
		opts := monitor.PersistOptions{
			Shards: c.shards, SyncInterval: -1, CompactBytes: -1,
		}
		if c.faultfs {
			// A fault-injection wrapper with nothing scheduled: every
			// write and sync still crosses the seam, so the entry prices
			// the abstraction itself.
			opts.FS = faultfs.New(faultfs.Plan{}, nil)
		}
		store, err = monitor.OpenPersistent(dir, start, time.Minute, opts)
		if err != nil {
			return benchStats{}, err
		}
		defer store.Close()
	} else {
		store = monitor.NewStoreShards(start, time.Minute, c.shards)
	}
	col := obs.NewCollector()
	store.SetCollector(col)
	if c.telemetry {
		// The always-on observability surface at its most aggressive: a
		// debug-level structured logger and a history ring self-scraping
		// far faster than the production default, so the measured
		// overhead upper-bounds the deployed one.
		col.SetLogger(obs.NewLogger(io.Discard, slog.LevelDebug, true))
		col.StartHistory(200*time.Millisecond, time.Minute)
		defer col.StopHistory()
	}
	srv := monitor.NewIngestServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return benchStats{}, err
	}
	defer srv.Close()

	// Pre-build every publisher's key rotation before the clock starts:
	// key formatting is harness setup, not ingest cost.
	keysByPub := make([][]topo.KPIKey, ingestPublishers)
	for p := range keysByPub {
		keysByPub[p] = ingestKeys(p, perPub)
	}

	total := int64(ingestPublishers) * int64(perPub)
	errs := make(chan error, ingestPublishers)
	t0 := time.Now()
	for p := 0; p < ingestPublishers; p++ {
		go func(p int) {
			errs <- publishIngestLoad(addr.String(), c.batch, keysByPub[p], start)
		}(p)
	}
	for p := 0; p < ingestPublishers; p++ {
		if err := <-errs; err != nil {
			return benchStats{}, err
		}
	}
	// Publishers have flushed and closed; wait for the server side to
	// drain its last buffered frames into the store. The poll is fine
	// grained so the tail wait does not distort short entries.
	deadline := time.Now().Add(30 * time.Second)
	for col.Counter(obs.CtrIngested) < total {
		if time.Now().After(deadline) {
			return benchStats{}, fmt.Errorf("%s: ingested %d of %d measurements before timeout",
				c.name, col.Counter(obs.CtrIngested), total)
		}
		time.Sleep(50 * time.Microsecond)
	}
	elapsed := time.Since(t0)
	return benchStats{NsPerOp: float64(elapsed.Nanoseconds()) / float64(total)}, nil
}

// publishIngestLoad is one publisher goroutine's work: one measurement
// per entry of the pre-built key rotation, batched per the case
// configuration. Bins advance every full key rotation so every
// measurement lands in its own (key, bin) cell.
func publishIngestLoad(addr string, batchSize int, keys []topo.KPIKey, start time.Time) error {
	pub, err := monitor.DialPublisher(addr)
	if err != nil {
		return err
	}
	perPub := len(keys)
	const distinct = 32
	if batchSize > 1 {
		batch := make([]monitor.Measurement, 0, batchSize)
		for i := 0; i < perPub; i++ {
			batch = append(batch, monitor.Measurement{
				Key: keys[i], T: start.Add(time.Duration(i/distinct) * time.Minute), V: float64(i),
			})
			if len(batch) == batchSize {
				if err := pub.PublishBatch(batch); err != nil {
					pub.Close()
					return err
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := pub.PublishBatch(batch); err != nil {
				pub.Close()
				return err
			}
		}
	} else {
		for i := 0; i < perPub; i++ {
			m := monitor.Measurement{
				Key: keys[i], T: start.Add(time.Duration(i/distinct) * time.Minute), V: float64(i),
			}
			if err := pub.Publish(m); err != nil {
				pub.Close()
				return err
			}
		}
	}
	return pub.Close()
}

// runIngestSuite executes every ingest configuration with perPub
// measurements per publisher. With checkPath empty the results are
// written to outPath as a funnel-bench/v1 document; otherwise they are
// gated against the committed baseline (latency headroom per entry)
// plus the fresh ingestSpeedupFloor ratio.
func runIngestSuite(perPub int, outPath, checkPath string) error {
	if perPub < 100 {
		perPub = 100
	}
	fmt.Printf("ingest-throughput suite: %d publishers × %d measurements per entry\n",
		ingestPublishers, perPub)
	cal := calibrateNs()
	fmt.Printf("host calibration kernel: %.0f ns/op\n", cal)
	var entries []benchEntry
	byName := make(map[string]benchStats)
	cases := ingestCases()
	for _, c := range cases {
		// Best of two runs: wall-clock per-measurement cost only ever
		// inflates under scheduler or GC interference, so the min is the
		// honest figure on a shared host.
		st, err := measureIngest(c, perPub)
		if err != nil {
			return err
		}
		if st2, err := measureIngest(c, perPub); err != nil {
			return err
		} else if st2.NsPerOp < st.NsPerOp {
			st = st2
		}
		byName[c.name] = st
		entries = append(entries, benchEntry{Name: c.name, Iters: ingestPublishers * perPub, After: st})
		fmt.Printf("  %-30s %12.0f ns/measurement\n", c.name, st.NsPerOp)
	}

	// Bin-to-verdict: the end-to-end data-freshness latency the
	// telemetry work surfaces — last bin arrival to verdict emission,
	// measured through a live store-backed assessment. Best of three,
	// same min convention as the throughput entries, with a GC flush
	// first: the entry inherits the garbage of eight ingest runs, and a
	// collection landing mid-measurement can double a figure that is
	// otherwise a millisecond-scale constant.
	runtime.GC()
	b2v, b2vIters, err := measureBinToVerdict()
	if err != nil {
		return err
	}
	for round := 1; round < 3; round++ {
		runtime.GC()
		if b2v2, n2, err := measureBinToVerdict(); err != nil {
			return err
		} else if b2v2.NsPerOp < b2v.NsPerOp {
			b2v, b2vIters = b2v2, n2
		}
	}
	entries = append(entries, benchEntry{Name: "ingest/bin-to-verdict", Iters: b2vIters, After: b2v})
	fmt.Printf("  %-30s %12.0f ns/verdict (mean over %d KPIs)\n", "ingest/bin-to-verdict", b2v.NsPerOp, b2vIters)

	memRatio := byName["ingest/single-frame-1shard"].NsPerOp / byName["ingest/batch-frame-sharded"].NsPerOp
	walRatio := byName["ingest/wal-single-frame-1shard"].NsPerOp / byName["ingest/wal-batch-frame-sharded"].NsPerOp
	// The two overhead gates divide figures whose scheduler noise (on a
	// small CI host, often one CPU) is several times the cost under
	// test, so they are measured as paired rounds rather than from the
	// table minima above: the numerator and denominator run back to
	// back so drift hits both sides alike.
	telemetryRatio, err := pairedRatio(cases, perPub,
		"ingest/batch-frame-sharded-telemetry", "ingest/batch-frame-sharded")
	if err != nil {
		return err
	}
	faultfsRatio, err := pairedRatio(cases, perPub,
		"ingest/wal-batch-frame-sharded-faultfs", "ingest/wal-batch-frame-sharded")
	if err != nil {
		return err
	}
	fmt.Printf("  batch+sharded speedup over single-frame single-mutex: %.1f× in-memory, %.1f× persistent\n",
		memRatio, walRatio)
	fmt.Printf("  telemetry overhead on the batched sharded path: %.3f× (cap %.2f×)\n",
		telemetryRatio, telemetryOverheadCap)
	fmt.Printf("  faultfs seam overhead on the persistent path: %.3f× (cap %.2f×)\n",
		faultfsRatio, faultfsOverheadCap)

	if checkPath != "" {
		if walRatio < ingestSpeedupFloor {
			return fmt.Errorf("persistent ingest speedup %.2f× below required %.1f×", walRatio, ingestSpeedupFloor)
		}
		if telemetryRatio > telemetryOverheadCap {
			return fmt.Errorf("telemetry ingest overhead %.3f× above cap %.2f×", telemetryRatio, telemetryOverheadCap)
		}
		if faultfsRatio > faultfsOverheadCap {
			return fmt.Errorf("faultfs seam overhead %.3f× above cap %.2f×", faultfsRatio, faultfsOverheadCap)
		}
		return checkAgainstBaseline(checkPath, cal, entries)
	}
	return writeBenchFile(outPath, "funnel-bench/v1", cal, entries)
}

// pairedRatio measures the num configuration against the den
// configuration in adjacent rounds and returns the minimum per-round
// ratio. Interference on a shared host only ever inflates a run, and
// it is strongly time-correlated, so running the pair back to back
// and keeping the cleanest round's ratio isolates the constant cost
// under test (a telemetry surface, a filesystem seam) from scheduler
// drift that a table of independently-timed minima cannot cancel.
func pairedRatio(cases []ingestCase, perPub int, num, den string) (float64, error) {
	var numCase, denCase ingestCase
	for _, c := range cases {
		if c.name == num {
			numCase = c
		}
		if c.name == den {
			denCase = c
		}
	}
	if numCase.name == "" || denCase.name == "" {
		return 0, fmt.Errorf("pairedRatio: unknown case %q or %q", num, den)
	}
	best := math.Inf(1)
	for round := 0; round < 3; round++ {
		d, err := measureIngest(denCase, perPub)
		if err != nil {
			return 0, err
		}
		n, err := measureIngest(numCase, perPub)
		if err != nil {
			return 0, err
		}
		if r := n.NsPerOp / d.NsPerOp; r < best {
			best = r
		}
	}
	return best, nil
}

// measureBinToVerdict runs a small store-backed assessment — three
// servers, one metric, a level shift on the treated one — and reads the
// mean of the stage.bin_to_verdict histogram: nanoseconds from the
// last bin's node-local arrival to verdict emission, per KPI. The
// store is filled through AppendBatch so every series carries a live
// arrival watermark, exactly as network ingest stamps them.
func measureBinToVerdict() (benchStats, int, error) {
	const historyDays = 2
	changeBin := historyDays*1440 + 240
	total := changeBin + 200
	start := time.Unix(0, 0).UTC()
	store := monitor.NewStoreShards(start, time.Minute, monitor.StoreShards)
	col := obs.NewCollector()
	store.SetCollector(col)

	tp := topo.NewTopology()
	for i := 0; i < 3; i++ {
		tp.Deploy("bench.svc", fmt.Sprintf("b2v-%d", i))
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]monitor.Measurement, 0, 3*total)
	for bin := 0; bin < total; bin++ {
		ts := start.Add(time.Duration(bin) * time.Minute)
		for i := 0; i < 3; i++ {
			v := 58 + 0.6*rng.NormFloat64()
			if i == 0 && bin >= changeBin {
				v += 9
			}
			batch = append(batch, monitor.Measurement{
				Key: topo.KPIKey{Scope: topo.ScopeServer, Entity: fmt.Sprintf("b2v-%d", i), Metric: "mem.util"},
				T:   ts, V: v,
			})
		}
	}
	store.AppendBatch(batch)

	assessor, err := funnel.NewAssessor(store, tp, funnel.Config{
		ServerMetrics: []string{"mem.util"},
		HistoryDays:   historyDays,
		Obs:           col,
	})
	if err != nil {
		return benchStats{}, 0, err
	}
	if _, err := assessor.Assess(changelog.Change{
		ID: "b2v-chg", Type: changelog.Config, Service: "bench.svc",
		Servers: []string{"b2v-0"}, At: start.Add(time.Duration(changeBin) * time.Minute),
	}); err != nil {
		return benchStats{}, 0, err
	}
	h := col.Stage(obs.StageBinToVerdict)
	n := h.Count()
	if n == 0 {
		return benchStats{}, 0, fmt.Errorf("bin-to-verdict: no latencies recorded")
	}
	return benchStats{NsPerOp: float64(h.Sum().Nanoseconds()) / float64(n)}, int(n), nil
}
