// Command funnelbench regenerates every table and figure of the
// CoNEXT'15 FUNNEL paper from synthetic workloads (see DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded results):
//
//	funnelbench -fig2            level-shift / ramp example series
//	funnelbench -table1          accuracy per KPI type × method
//	funnelbench -table2          per-window cost and cores for 1M KPIs
//	funnelbench -fig5            detection-delay CCDF per method
//	funnelbench -table3          one-week deployment precision
//	funnelbench -fig6            Redis rebalancing case study
//	funnelbench -fig7            advertising incident case study
//	funnelbench -ablate          scorer design ablations
//	funnelbench -roc             ROC threshold sweeps per method
//	funnelbench -all             everything above
//
// Sizing flags (-changes, -history, -seed, -bootstraps) trade fidelity
// for runtime; defaults reproduce EXPERIMENTS.md.
//
// A separate mode tracks the hot-path latency/allocation baseline
// (committed as BENCH_<n>.json, see README's Performance section):
//
//	funnelbench -run-bench                  measure and write -bench-out
//	funnelbench -run-bench -bench-check F   measure and fail on alloc or
//	                                        latency regression vs baseline F
//
// and a third measures end-to-end ingest throughput over loopback TCP
// (committed as BENCH_3.json; the check additionally requires the
// batch-frame + sharded-store path to beat the single-frame
// single-mutex baseline by ≥ 4×):
//
//	funnelbench -run-ingest-bench                  measure, write -ingest-out
//	funnelbench -run-ingest-bench -bench-check F   measure and gate vs F
//
// and a fourth measures the assessment read path — flat full-series
// copies vs chunked RangeInto windows — plus store compression at
// 30-day retention (committed as BENCH_4.json; the check enforces the
// same-run ratio gates described in readbench.go):
//
//	funnelbench -run-read-bench                  measure, write -read-out
//	funnelbench -run-read-bench -bench-check F   measure and gate vs F
//
// and a fifth measures the streaming assessment path — p99
// bin-to-verdict latency of the assess-on-ingest Streamer against the
// pull-mode batch sweep at equal ingest rate, plus the attached
// feed's cost on AppendBatch throughput (committed as BENCH_5.json;
// the check enforces the ≥ 5× latency advantage and the ≤ 1.05×
// ingest-overhead cap described in streambench.go):
//
//	funnelbench -run-stream-bench                  measure, write -stream-out
//	funnelbench -run-stream-bench -bench-check F   measure and gate vs F
//
// A sixth mode maintains the detector bake-off table in EXPERIMENTS.md
// (every registered detector scored on a pinned labelled corpus with
// trend/long-range-dependence traps; see the "Detector bake-off"
// section there for the methodology):
//
//	funnelbench -run-bakeoff                  regenerate and splice the table
//	funnelbench -run-bakeoff -bakeoff-check   fail if the committed table
//	                                          drifted (ns/op column ignored)
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		fig2   = flag.Bool("fig2", false, "print the Fig. 2 example series")
		table1 = flag.Bool("table1", false, "accuracy per KPI type × method (Table 1)")
		table2 = flag.Bool("table2", false, "per-window cost (Table 2)")
		fig5   = flag.Bool("fig5", false, "detection-delay CCDF (Fig. 5)")
		table3 = flag.Bool("table3", false, "deployment-week precision (Table 3)")
		fig6   = flag.Bool("fig6", false, "Redis case study (Fig. 6)")
		fig7   = flag.Bool("fig7", false, "advertising case study (Fig. 7)")
		ablate = flag.Bool("ablate", false, "scorer design ablations")
		roc    = flag.Bool("roc", false, "ROC threshold sweeps per method")

		changes    = flag.Int("changes", 144, "number of software changes in the Table-1/Fig-5 corpus")
		history    = flag.Int("history", 7, "days of history per series (paper: 30; smaller = faster)")
		seed       = flag.Int64("seed", 1, "corpus seed")
		bootstraps = flag.Int("bootstraps", 300, "CUSUM bootstrap shuffles (paper-faithful: 1000)")
		csvOut     = flag.String("csv", "", "also write table1.csv / fig5_ccdf.csv into this directory")

		runBench   = flag.Bool("run-bench", false, "run the latency/allocation benchmark suite")
		benchIters = flag.Int("bench-iters", 300, "iterations per per-window benchmark entry")
		benchOut   = flag.String("bench-out", "BENCH_2.json", "output path for the benchmark baseline JSON")
		benchCheck = flag.String("bench-check", "", "baseline JSON to compare against; exit 1 on allocation or latency regression")

		runIngest  = flag.Bool("run-ingest-bench", false, "run the end-to-end ingest-throughput suite (loopback TCP, single vs batch frames, 1 vs sharded store)")
		ingestMeas = flag.Int("ingest-meas", 20000, "measurements per publisher per ingest-throughput entry")
		ingestOut  = flag.String("ingest-out", "BENCH_3.json", "output path for the ingest-throughput baseline JSON")

		runRead   = flag.Bool("run-read-bench", false, "run the assessment read-path suite (flat copy vs chunked RangeInto, assess e2e, compression)")
		readIters = flag.Int("read-iters", 400, "iterations per read-path benchmark entry")
		readOut   = flag.String("read-out", "BENCH_4.json", "output path for the read-path baseline JSON")

		runStream = flag.Bool("run-stream-bench", false, "run the streaming-assessment suite (p99 bin-to-verdict stream vs pull, attached-feed ingest overhead)")
		streamOut = flag.String("stream-out", "BENCH_5.json", "output path for the streaming baseline JSON")

		runBakeoffF  = flag.Bool("run-bakeoff", false, "regenerate the detector bake-off table and splice it into -bakeoff-doc")
		bakeoffDoc   = flag.String("bakeoff-doc", "EXPERIMENTS.md", "document holding the bake-off markers")
		bakeoffCheck = flag.Bool("bakeoff-check", false, "with -run-bakeoff: compare instead of write; exit 1 when the committed table drifted (ns/op column ignored)")
	)
	flag.Parse()
	csvDir = *csvOut

	if *runBakeoffF {
		if err := runBakeoff(*bakeoffDoc, *bakeoffCheck); err != nil {
			fmt.Fprintf(os.Stderr, "funnelbench: bakeoff: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *runIngest {
		if err := runIngestSuite(*ingestMeas, *ingestOut, *benchCheck); err != nil {
			fmt.Fprintf(os.Stderr, "funnelbench: ingest bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *runStream {
		if err := runStreamBenchSuite(*streamOut, *benchCheck); err != nil {
			fmt.Fprintf(os.Stderr, "funnelbench: stream bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *runRead {
		if err := runReadBenchSuite(*readIters, *readOut, *benchCheck); err != nil {
			fmt.Fprintf(os.Stderr, "funnelbench: read bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *runBench || *benchCheck != "" {
		if err := runBenchSuite(*benchIters, *benchOut, *benchCheck); err != nil {
			fmt.Fprintf(os.Stderr, "funnelbench: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := runConfig{
		Changes:    *changes,
		History:    *history,
		Seed:       *seed,
		Bootstraps: *bootstraps,
	}

	ran := false
	run := func(enabled bool, name string, fn func(runConfig) error) {
		if !enabled && !*all {
			return
		}
		ran = true
		fmt.Printf("==== %s ====\n", name)
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "funnelbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run(*fig2, "Fig. 2 — example level shift and ramp", runFig2)
	run(*table2, "Table 2 — computational cost per window", runTable2)
	run(*table1, "Table 1 — accuracy per KPI type", runTable1)
	run(*fig5, "Fig. 5 — detection-delay CCDF", runFig5)
	run(*table3, "Table 3 — deployment-week statistics", runTable3)
	run(*fig6, "Fig. 6 — Redis load-balancing case", runFig6)
	run(*fig7, "Fig. 7 — advertising incident case", runFig7)
	run(*ablate, "Ablations — scorer design choices", runAblations)
	run(*roc, "ROC — threshold sweeps", runROC)

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runConfig carries the sizing flags to the experiment runners.
type runConfig struct {
	Changes    int
	History    int
	Seed       int64
	Bootstraps int
}
