// The -run-stream-bench mode: the streaming-assessment suite whose
// results are committed as BENCH_5.json at the repo root. It drives
// the identical multi-change workload through both assessment engines
// at the same paced ingest rate — the pull-mode Online assessor (full
// window sweep once the observation window completes) and the
// assess-on-ingest Streamer (per-KPI score state advanced as each bin
// lands) — and reads the exact per-KPI bin-to-verdict latencies off
// each report's trace. A second block measures what an attached
// Streamer costs the ingest hot path: in-process AppendBatch
// throughput with the bin feed registered and a change tracked versus
// a bare store, in adjacent rounds so host drift cancels. The
// -bench-check mode replays the suite against the committed baseline
// and enforces the two headline gates fresh in the same run: streaming
// p99 bin-to-verdict at least streamLatencyFloor× better than
// pull-mode, and attached ingest within streamAppendOverheadCap× of
// detached.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/changelog"
	"repro/internal/funnel"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/topo"
)

// streamLatencyFloor is the required p99 bin-to-verdict advantage of
// the streaming engine over pull-mode at equal ingest rate. The
// architectural claim behind it: pull-mode pays the whole ±WindowBins
// score sweep for every KPI after the last bin arrives, while the
// streamer has already scored every window the scorer's lookahead
// allowed, leaving only the final lookahead-blocked windows plus the
// cheap statistical stages between last-bin arrival and verdict. Both
// sides are measured in the same process moments apart, so the ratio
// survives noisy CI hosts.
const streamLatencyFloor = 5.0

// streamAppendOverheadCap bounds what an attached Streamer — bin feed
// registered, a change tracked, scoring workers live — may add to
// in-process AppendBatch throughput. The feed's ingest-side cost is
// one atomic snapshot load plus a map miss for untracked keys, so
// always-on streaming is only an honest default if it stays within
// noise of free.
const streamAppendOverheadCap = 1.05

// Workload shape for the latency comparison: three services changing
// streamStaggerBins apart, each with streamServersPerSvc servers of
// which streamTreatedPerSvc receive the deployed shift, giving
// 27 per-KPI bin-to-verdict samples per round. The window is the
// production default (±60 bins) — the pull-mode cost under test is
// exactly the sweep of that window.
const (
	streamHistoryDays   = 1
	streamServices      = 3
	streamServersPerSvc = 9
	streamTreatedPerSvc = 3
	streamWindowBins    = 60
	streamStaggerBins   = 30
)

// streamPace is the per-bin ingest cadence through the live region of
// the replay (production cadence is one minute; the compressed replay
// only needs to be slow enough that "equal ingest rate" is true for
// both engines rather than a race the streamer's workers can lose).
const streamPace = 2 * time.Millisecond

// streamAppendMeas is the measurement count per append-throughput
// round; large enough that the per-append feed cost dominates the
// harness, small enough that three paired rounds stay sub-second.
const streamAppendMeas = 1 << 19

// streamEngine is the surface the two assessment engines share.
type streamEngine interface {
	RegisterChange(changelog.Change) error
	Reports() <-chan *funnel.Report
	Pending() int
	Close()
}

// measureStreamB2V replays the deterministic multi-change workload
// through one engine and returns every per-KPI bin-to-verdict sample
// (nanoseconds) from the emitted report traces. History up to the
// first assessment window is bulk-loaded — arrival watermarks only
// matter once the windows open — then the live region is paced bin by
// bin identically for both engines, with pull-mode polled once per
// bin exactly as the daemon's measurement loop does.
func measureStreamB2V(streaming bool) ([]float64, error) {
	start := time.Unix(0, 0).UTC()
	store := monitor.NewStoreShards(start, time.Minute, monitor.StoreShards)
	col := obs.NewCollector()
	store.SetCollector(col)
	tp := topo.NewTopology()

	type seriesSpec struct {
		key   topo.KPIKey
		shift float64
		from  int // the owning service's change bin
	}
	baseChange := streamHistoryDays*1440 + 240
	var specs []seriesSpec
	var changes []changelog.Change
	for s := 0; s < streamServices; s++ {
		svc := fmt.Sprintf("stream.svc%d", s)
		cb := baseChange + s*streamStaggerBins
		var treated []string
		for i := 0; i < streamServersPerSvc; i++ {
			srv := fmt.Sprintf("st%d-%d", s, i)
			tp.Deploy(svc, srv)
			shift := 0.0
			if i < streamTreatedPerSvc {
				shift = 9
				treated = append(treated, srv)
			}
			specs = append(specs, seriesSpec{
				key:   topo.KPIKey{Scope: topo.ScopeServer, Entity: srv, Metric: "mem.util"},
				shift: shift,
				from:  cb,
			})
		}
		changes = append(changes, changelog.Change{
			ID: svc + "-chg", Type: changelog.Upgrade, Service: svc,
			Servers: treated, At: start.Add(time.Duration(cb) * time.Minute),
		})
	}
	// One sub-generator per series, seeded from a fixed root, so both
	// engines (and every round) see bit-identical measurements.
	root := rand.New(rand.NewSource(41))
	rngs := make([]*rand.Rand, len(specs))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(root.Int63()))
	}
	appendBin := func(bin int, batch []monitor.Measurement) []monitor.Measurement {
		ts := start.Add(time.Duration(bin) * time.Minute)
		for i := range specs {
			v := 55 + 0.6*rngs[i].NormFloat64()
			if bin >= specs[i].from {
				v += specs[i].shift
			}
			batch = append(batch, monitor.Measurement{Key: specs[i].key, T: ts, V: v})
		}
		return batch
	}

	cfg := funnel.Config{
		ServerMetrics: []string{"mem.util"},
		HistoryDays:   streamHistoryDays,
		WindowBins:    streamWindowBins,
		Obs:           col,
	}
	var engine streamEngine
	var online *funnel.Online
	if streaming {
		sr, err := funnel.NewStreamer(store, tp, cfg, funnel.StreamConfig{
			Workers: 4, PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		engine = sr
	} else {
		o, err := funnel.NewOnline(store, tp, cfg)
		if err != nil {
			return nil, err
		}
		online, engine = o, o
	}
	defer engine.Close()

	lastChange := baseChange + (streamServices-1)*streamStaggerBins
	total := lastChange + streamWindowBins + 80
	liveFrom := baseChange - streamWindowBins - 80

	bulk := make([]monitor.Measurement, 0, len(specs)*liveFrom)
	for bin := 0; bin < liveFrom; bin++ {
		bulk = appendBin(bin, bulk)
	}
	store.AppendBatch(bulk)

	for _, c := range changes {
		if err := engine.RegisterChange(c); err != nil {
			return nil, err
		}
	}

	batch := make([]monitor.Measurement, 0, len(specs))
	for bin := liveFrom; bin < total; bin++ {
		batch = appendBin(bin, batch[:0])
		store.AppendBatch(batch)
		if online != nil {
			online.Poll()
		}
		time.Sleep(streamPace)
	}

	var samples []float64
	deadline := time.After(60 * time.Second)
	for got := 0; got < streamServices; got++ {
		select {
		case rep := <-engine.Reports():
			if rep.Trace == nil {
				return nil, fmt.Errorf("change %s: report carries no trace", rep.Change.ID)
			}
			if len(rep.Flagged()) == 0 {
				return nil, fmt.Errorf("change %s: nothing flagged — the workload no longer exercises a real verdict", rep.Change.ID)
			}
			for _, k := range rep.Trace.KPIs {
				if k.BinToVerdictNanos > 0 {
					samples = append(samples, float64(k.BinToVerdictNanos))
				}
			}
		case <-deadline:
			return nil, fmt.Errorf("streaming=%v: %d of %d reports before timeout (pending %d)",
				streaming, got, streamServices, engine.Pending())
		}
	}
	if n := engine.Pending(); n != 0 {
		return nil, fmt.Errorf("streaming=%v: %d changes still pending after all reports", streaming, n)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("streaming=%v: no bin-to-verdict samples recorded", streaming)
	}
	return samples, nil
}

// quantileNs returns the q-quantile of the samples (exact, from the
// sorted raw values — the obs histogram's power-of-two buckets are too
// coarse to divide into a ratio gate).
func quantileNs(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// meanNs returns the mean of the samples.
func meanNs(samples []float64) float64 {
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// measureStreamAppend times in-process AppendBatch throughput, with or
// without a live Streamer attached. The key rotation is mostly fleet
// keys the streamer never tracks plus the four tracked ones, so the
// measured cost covers both the filter miss (the overwhelmingly common
// case) and the dirty-mark path. The tracked change sits near the end
// of the fed timeline so its feed filter, dirty marks, drain wakeups,
// and incremental advances stay live for the entire timed region —
// replaying days of bins in tens of milliseconds would otherwise turn
// the scorer's bounded per-bin work into a burst rescore no production
// cadence exhibits, and readiness mid-run would retire the change and
// null the filter. Batches are pre-built so only the store — and,
// attached, the feed seam — is inside the clock.
func measureStreamAppend(attached bool) (benchStats, error) {
	start := time.Unix(0, 0).UTC()
	store := monitor.NewStoreShards(start, time.Minute, monitor.StoreShards)
	store.SetCollector(obs.NewCollector())
	tp := topo.NewTopology()
	var treated []string
	for i := 0; i < 4; i++ {
		srv := fmt.Sprintf("st-app-%d", i)
		tp.Deploy("stream.app", srv)
		if i < 2 {
			treated = append(treated, srv)
		}
	}
	const distinct = 128
	fedBins := streamAppendMeas / distinct
	if attached {
		sr, err := funnel.NewStreamer(store, tp, funnel.Config{
			ServerMetrics: []string{"mem.util"},
			HistoryDays:   1,
			WindowBins:    streamWindowBins,
			Obs:           obs.NewCollector(),
		}, funnel.StreamConfig{})
		if err != nil {
			return benchStats{}, err
		}
		defer sr.Close()
		if err := sr.RegisterChange(changelog.Change{
			ID: "app-chg", Type: changelog.Config, Service: "stream.app",
			Servers: treated, At: start.Add(time.Duration(fedBins-16) * time.Minute),
		}); err != nil {
			return benchStats{}, err
		}
	}

	keys := make([]topo.KPIKey, distinct)
	for i := range keys {
		keys[i] = topo.KPIKey{Scope: topo.ScopeServer, Entity: fmt.Sprintf("fleet-%d", i), Metric: "bench.qps"}
	}
	for i := 0; i < 4; i++ {
		keys[i*32] = topo.KPIKey{Scope: topo.ScopeServer, Entity: fmt.Sprintf("st-app-%d", i), Metric: "mem.util"}
	}
	const batchLen = 1024
	batches := make([][]monitor.Measurement, 0, streamAppendMeas/batchLen)
	for off := 0; off < streamAppendMeas; off += batchLen {
		b := make([]monitor.Measurement, batchLen)
		for j := range b {
			i := off + j
			b[j] = monitor.Measurement{
				Key: keys[i%distinct],
				T:   start.Add(time.Duration(i/distinct) * time.Minute),
				V:   float64(i % 97),
			}
		}
		batches = append(batches, b)
	}

	// Flush the prebuild garbage (tens of MB of measurement slices) so
	// a collection does not land inside one side of the paired round.
	runtime.GC()
	t0 := time.Now()
	for _, b := range batches {
		store.AppendBatch(b)
	}
	elapsed := time.Since(t0)
	return benchStats{NsPerOp: float64(elapsed.Nanoseconds()) / float64(streamAppendMeas)}, nil
}

// runStreamBenchSuite executes the streaming suite. With checkPath
// empty the results are written to outPath as a funnel-stream-bench/v1
// document; otherwise they are gated against the committed baseline
// (latency headroom per entry) plus the two fresh same-run ratios.
func runStreamBenchSuite(outPath, checkPath string) error {
	fmt.Printf("streaming-assessment suite: %d services × %d servers, %d-bin window, %v/bin live pace\n",
		streamServices, streamServersPerSvc, streamWindowBins, streamPace)
	cal := calibrateNs()
	fmt.Printf("host calibration kernel: %.0f ns/op\n", cal)

	// Three paired rounds, pull then stream back to back so drift hits
	// both sides alike. Interference only ever inflates a latency, so
	// the committed entries keep each mode's cleanest (minimum) round
	// while the gate keeps the cleanest ratio: the round whose
	// streaming figure — the side scheduling noise distorts most,
	// since pull-mode's is dominated by deterministic sweep compute —
	// came through undisturbed.
	pullP99 := math.Inf(1)
	streamP99 := math.Inf(1)
	var pullMean, streamMean float64
	var nPull, nStream int
	bestRatio := 0.0
	for round := 0; round < 3; round++ {
		runtime.GC()
		pull, err := measureStreamB2V(false)
		if err != nil {
			return err
		}
		runtime.GC()
		strm, err := measureStreamB2V(true)
		if err != nil {
			return err
		}
		pp, sp := quantileNs(pull, 0.99), quantileNs(strm, 0.99)
		if r := pp / sp; r > bestRatio {
			bestRatio = r
		}
		if pp < pullP99 {
			pullP99, pullMean, nPull = pp, meanNs(pull), len(pull)
		}
		if sp < streamP99 {
			streamP99, streamMean, nStream = sp, meanNs(strm), len(strm)
		}
		fmt.Printf("  round %d: pull p99 %8.2f ms   stream p99 %8.2f ms   ratio %5.1f×\n",
			round+1, pp/1e6, sp/1e6, pp/sp)
	}

	// Append throughput, paired rounds, minimum ratio (the overhead
	// cap divides figures whose scheduler noise can exceed the cost
	// under test — same reasoning as the ingest suite's pairedRatio).
	detached := benchStats{NsPerOp: math.Inf(1)}
	attached := benchStats{NsPerOp: math.Inf(1)}
	overhead := math.Inf(1)
	for round := 0; round < 3; round++ {
		d, err := measureStreamAppend(false)
		if err != nil {
			return err
		}
		a, err := measureStreamAppend(true)
		if err != nil {
			return err
		}
		if r := a.NsPerOp / d.NsPerOp; r < overhead {
			overhead = r
		}
		if d.NsPerOp < detached.NsPerOp {
			detached = d
		}
		if a.NsPerOp < attached.NsPerOp {
			attached = a
		}
	}

	entries := []benchEntry{
		{Name: "stream/b2v-pull-p99", Iters: nPull, After: benchStats{NsPerOp: pullP99}},
		{Name: "stream/b2v-pull-mean", Iters: nPull, After: benchStats{NsPerOp: pullMean}},
		{Name: "stream/b2v-stream-p99", Iters: nStream, After: benchStats{NsPerOp: streamP99}},
		{Name: "stream/b2v-stream-mean", Iters: nStream, After: benchStats{NsPerOp: streamMean}},
		{Name: "stream/append-detached", Iters: streamAppendMeas, After: detached},
		{Name: "stream/append-attached", Iters: streamAppendMeas, After: attached},
	}
	for _, e := range entries {
		fmt.Printf("  %-26s %14.0f ns/op\n", e.Name, e.After.NsPerOp)
	}
	fmt.Printf("  streaming p99 bin-to-verdict advantage: %.1f× (floor %.1f×)\n",
		bestRatio, streamLatencyFloor)
	fmt.Printf("  attached-streamer append overhead: %.3f× (cap %.2f×)\n",
		overhead, streamAppendOverheadCap)

	if checkPath != "" {
		if bestRatio < streamLatencyFloor {
			return fmt.Errorf("streaming p99 bin-to-verdict advantage %.2f× below required %.1f×",
				bestRatio, streamLatencyFloor)
		}
		if overhead > streamAppendOverheadCap {
			return fmt.Errorf("attached-streamer append overhead %.3f× above cap %.2f×",
				overhead, streamAppendOverheadCap)
		}
		return checkAgainstBaseline(checkPath, cal, entries)
	}
	return writeBenchFile(outPath, "funnel-stream-bench/v1", cal, entries)
}
