package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/eval"
	"repro/internal/funnel"
	"repro/internal/sst"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// corpusRun memoizes the expensive Table-1/Fig-5 evaluation so that
// -all computes it once.
type corpusRun struct {
	scenario *workload.Scenario
	results  []*eval.Result
}

var corpusCache map[runConfig]*corpusRun

// corpus runs (or returns the cached) full method evaluation.
func corpus(cfg runConfig) (*corpusRun, error) {
	if c, ok := corpusCache[cfg]; ok {
		return c, nil
	}
	p := workload.DefaultParams()
	p.Changes = cfg.Changes
	p.HistoryDays = cfg.History
	p.Seed = cfg.Seed
	sc, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}

	cusum := &baselines.CUSUM{Window: 60, Bootstraps: cfg.Bootstraps, MinRelRange: 2}
	mrls := baselines.NewMRLS()
	wow := baselines.NewWoW()

	// Per-method thresholds from the pre-change stretches of the corpus
	// itself (§4.1: parameters "set to the best for the corresponding
	// algorithm's accuracy").
	cthr, err := eval.CalibrateOnScenario(sc, cusum, 24, 0.999, 1.1)
	if err != nil {
		return nil, fmt.Errorf("calibrating CUSUM: %w", err)
	}
	// MRLS is calibrated on the well-behaved stationary metrics only —
	// see eval.CalibrateOnScenario for why that reproduces its
	// published operating point (high recall, collapsed variable TNR).
	mthr, err := eval.CalibrateOnScenario(sc, mrls, 24, 0.999, 1.1,
		workload.MetricMemUtil, workload.MetricQueueLen)
	if err != nil {
		return nil, fmt.Errorf("calibrating MRLS: %w", err)
	}
	wthr, err := eval.CalibrateOnScenario(sc, wow, 24, 0.999, 1.1)
	if err != nil {
		return nil, fmt.Errorf("calibrating WoW: %w", err)
	}
	fmt.Printf("calibrated thresholds: CUSUM=%.2f MRLS=%.2f WoW=%.2f (FUNNEL uses its default %.2f)\n",
		cthr, mthr, wthr, funnel.DefaultDetectorThreshold)

	methods := []eval.Method{
		&eval.FunnelMethod{Label: "FUNNEL", Config: funnel.Config{HistoryDays: cfg.History}},
		&eval.FunnelMethod{Label: "ImprovedSST", Config: funnel.Config{HistoryDays: cfg.History, SkipDiD: true}},
		// CUSUM smooths over a few windows; MRLS alarms on a single
		// deviating window (PRISM's residual test reacts immediately,
		// which is also why "occasionally, MRLS can detect a level
		// shift within 7 minutes, at the cost of much more false
		// positives", §4.4).
		&eval.BaselineMethod{Label: "CUSUM", Scorer: cusum, Threshold: cthr, Persistence: 7},
		&eval.BaselineMethod{Label: "MRLS", Scorer: mrls, Threshold: mthr, Persistence: 1},
		// WoW (Chen et al. 2013) is our addition beyond the paper's
		// comparison set: it cancels seasonality by construction but
		// cannot exclude non-seasonal confounders.
		&eval.BaselineMethod{Label: "WoW", Scorer: wow, Threshold: wthr, Persistence: 7},
	}
	results, err := eval.Run(sc, methods, eval.Options{NegativeWeight: 86})
	if err != nil {
		return nil, err
	}
	if corpusCache == nil {
		corpusCache = make(map[runConfig]*corpusRun)
	}
	run := &corpusRun{scenario: sc, results: results}
	corpusCache[cfg] = run
	return run, nil
}

// runTable1 prints the Precision/Recall/TNR/Accuracy table per KPI
// type and method.
func runTable1(cfg runConfig) error {
	run, err := corpus(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-11s %10s %10s %10s %10s %10s\n",
		"Method", "Type", "Total", "Precision", "Recall", "TNR", "Accuracy")
	for _, res := range run.results {
		for _, kt := range []stats.KPIType{stats.Seasonal, stats.Stationary, stats.Variable} {
			c := res.ByType[kt]
			fmt.Printf("%-12s %-11s %10.0f %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
				res.Method, kt, c.Total(),
				100*c.Precision(), 100*c.Recall(), 100*c.TNR(), 100*c.Accuracy())
		}
		o := res.Overall()
		fmt.Printf("%-12s %-11s %10.0f %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
			res.Method, "ALL", o.Total(),
			100*o.Precision(), 100*o.Recall(), 100*o.TNR(), 100*o.Accuracy())
	}
	return table1CSV(run.results)
}

// runFig5 prints the detection-delay CCDF per method plus medians.
func runFig5(cfg runConfig) error {
	run, err := corpus(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "Method", "n(TP)", "p25", "median", "p75", "max")
	for _, res := range run.results {
		if len(res.Delays) == 0 {
			fmt.Printf("%-12s %8d %8s %8s %8s %8s\n", res.Method, 0, "-", "-", "-", "-")
			continue
		}
		fmt.Printf("%-12s %8d %7.1fm %7.1fm %7.1fm %7.1fm\n", res.Method, len(res.Delays),
			res.DelayQuantile(0.25), res.DelayQuantile(0.5), res.DelayQuantile(0.75), res.DelayQuantile(1))
	}
	fmt.Println("\nCCDF (delay_minutes  P[delay ≥ x]):")
	for _, res := range run.results {
		pts := res.DelayCCDF()
		fmt.Printf("%s:", res.Method)
		step := 1
		if len(pts) > 20 {
			step = len(pts) / 20
		}
		for i := 0; i < len(pts); i += step {
			fmt.Printf(" (%.0f, %.2f)", pts[i].X, pts[i].P)
		}
		fmt.Println()
	}
	return fig5CSV(run.results)
}

// runTable2 measures per-window cost per method and derives the
// cores-for-a-million-KPIs row.
func runTable2(cfg runConfig) error {
	// Use a variable (bursty) series: the dominant KPI class in the
	// corpus and the costliest case for the iterative methods.
	series := make([]float64, 400)
	gen := workload.NewVariable(100, 0.3, cfg.Seed)
	for i := range series {
		series[i] = gen.At(i)
	}
	type entry struct {
		name   string
		scorer interface {
			ScoreAt([]float64, int) float64
			Config() sst.Config
		}
	}
	entries := []entry{
		{"FUNNEL", sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true})},
		{"CUSUM", &baselines.CUSUM{Window: 60, Bootstraps: 1000, MinRelRange: 2}},
		{"MRLS", baselines.NewMRLS()},
	}
	fmt.Printf("%-10s %16s %24s\n", "Method", "run time/window", "cores for 1M KPIs @1min")
	for _, e := range entries {
		c := e.scorer.Config()
		t0 := c.PastSpan()
		span := len(series) - c.FutureSpan() - t0
		i := 0
		per := eval.TimePerWindow(func() {
			e.scorer.ScoreAt(series, t0+i%span)
			i++
		}, 200)
		fmt.Printf("%-10s %16s %24d\n", e.name, per, eval.CoresForMillionKPIs(per))
	}
	return nil
}

// runTable3 simulates a deployment period and reports the Table-3
// statistics: changes, changes with impact, KPIs, KPI changes and the
// precision of FUNNEL's deliveries verified against ground truth.
func runTable3(cfg runConfig) error {
	p := workload.DefaultParams()
	p.Changes = cfg.Changes
	p.HistoryDays = cfg.History
	p.Seed = cfg.Seed + 1000
	sc, err := workload.Generate(p)
	if err != nil {
		return err
	}
	m := &eval.FunnelMethod{Label: "FUNNEL", Config: funnel.Config{HistoryDays: cfg.History}}
	stats, err := eval.SimulateDeployment(sc, m)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %12d\n", "#software changes", stats.Changes)
	fmt.Printf("%-28s %12d\n", "#changes with impact", stats.ChangesWithImpact)
	fmt.Printf("%-28s %12d\n", "#KPIs monitored", stats.KPIs)
	fmt.Printf("%-28s %12d\n", "#KPI changes delivered", stats.KPIChanges)
	fmt.Printf("%-28s %11.2f%%\n", "precision (vs ground truth)", 100*stats.Precision())
	return nil
}

// runFig2 prints a level-shift and a ramp example series (downsampled
// for the terminal).
func runFig2(cfg runConfig) error {
	base := workload.NewStationary(0.55, 0.012, cfg.Seed)
	shift := &workload.WithEffects{Base: base, Effects: []workload.Effect{{StartBin: 420, Magnitude: -0.17}}}
	ramp := &workload.WithEffects{Base: base, Effects: []workload.Effect{{StartBin: 120, Magnitude: 0.32, RampBins: 180}}}
	fmt.Println("bin  ramp-up  level-shift   (normalized KPI, cf. paper Fig. 2)")
	for b := 0; b < 600; b += 20 {
		fmt.Printf("%4d  %7.3f  %11.3f\n", b, ramp.At(b), shift.At(b))
	}
	return nil
}

// runFig6 reproduces the Redis case: which KPIs were flagged and in
// which direction.
func runFig6(cfg runConfig) error {
	rp := workload.DefaultRedisParams()
	rp.Seed = cfg.Seed + 6
	rc, err := workload.GenerateRedis(rp)
	if err != nil {
		return err
	}
	a, err := funnel.NewAssessor(rc.Source, rc.Topo, funnel.Config{
		ServerMetrics: []string{workload.MetricNIC},
		HistoryDays:   rp.HistoryDays,
	})
	if err != nil {
		return err
	}
	rep, err := a.Assess(rc.Change)
	if err != nil {
		return err
	}
	flagged := rep.Flagged()
	examined := len(rep.Assessments) + len(rep.Set.CServers)
	fmt.Printf("KPIs examined (treated %d + control %d = %d), flagged as change-induced: %d (paper: 16 of 118)\n",
		len(rep.Assessments), len(rep.Set.CServers), examined, len(flagged))
	names := make([]string, 0, len(flagged))
	dir := map[string]string{}
	for _, asmt := range flagged {
		names = append(names, asmt.Key.Entity)
		d := "up"
		if asmt.Alpha < 0 {
			d = "down"
		}
		dir[asmt.Key.Entity] = fmt.Sprintf("%s (α=%+.1f, %s)", d, asmt.Alpha, asmt.Detection.Kind)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s NIC throughput %s\n", n, dir[n])
	}
	return nil
}

// runFig7 reproduces the advertising incident: detection delay vs the
// 90-minute manual baseline, on a strongly seasonal KPI with no
// concurrent control group.
func runFig7(cfg runConfig) error {
	ap := workload.DefaultAdParams()
	ap.Seed = cfg.Seed + 7
	ac, err := workload.GenerateAdClicks(ap)
	if err != nil {
		return err
	}
	a, err := funnel.NewAssessor(ac.Source, ac.Topo, funnel.Config{
		InstanceMetrics: []string{workload.MetricEffectiveClicks},
		HistoryDays:     ap.HistoryDays - 1,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := a.Assess(ac.Change)
	if err != nil {
		return err
	}
	fmt.Printf("impact set KPIs: %d, flagged: %d; assessment wall time %v\n",
		len(rep.Assessments), len(rep.Flagged()), time.Since(start).Round(time.Millisecond))
	for _, asmt := range rep.Flagged() {
		if asmt.Key.Scope != topo.ScopeService {
			continue
		}
		delay, _ := funnel.DetectionDelay(asmt, ac.ChangeBin)
		fmt.Printf("service KPI %q: detected %s, delay %d min vs %d min manual turnaround (paper: 10 vs 90)\n",
			asmt.Key.Metric, asmt.Detection.Kind, delay, ap.FixAfterMinutes)
	}
	return nil
}

// runAblations compares the scorer design variants on a fixed
// detection task: 60 shifted + 60 clean variable-noise series.
func runAblations(cfg runConfig) error {
	variants := []struct {
		name string
		cfg  sst.Config
	}{
		{"deployed (IKA, filter, normalize)", sst.Config{Normalize: true, RobustFilter: true}},
		{"no robustness filter", sst.Config{Normalize: true}},
		{"no normalization", sst.Config{RobustFilter: true}},
		{"future-smallest eigenvectors", sst.Config{Normalize: true, RobustFilter: true, FutureSmallest: true}},
		{"omega=5 (fast mitigation)", sst.Config{Omega: 5, Normalize: true, RobustFilter: true}},
		{"omega=15 (precise)", sst.Config{Omega: 15, Normalize: true, RobustFilter: true}},
	}
	fmt.Printf("%-36s %8s %8s %10s\n", "Variant", "TPR", "FPR", "med delay")
	for _, v := range variants {
		tpr, fpr, med := ablationDetectionRates(v.cfg, cfg.Seed)
		fmt.Printf("%-36s %7.0f%% %7.0f%% %9.1fm\n", v.name, 100*tpr, 100*fpr, med)
	}
	return nil
}

// runROC sweeps detection thresholds per method and prints the ROC
// curves plus AUC — the alternative evaluation methodology §4.1 refers
// to ("calculating the accuracies and plotting the receiver operating
// characteristic (ROC) curves").
func runROC(cfg runConfig) error {
	p := workload.DefaultParams()
	p.Changes = min(cfg.Changes, 32) // the sweep scores every item once per scorer
	p.HistoryDays = 2
	p.Seed = cfg.Seed
	sc, err := workload.Generate(p)
	if err != nil {
		return err
	}
	type entry struct {
		name        string
		scorer      sst.Scorer
		persistence int
	}
	entries := []entry{
		{"FUNNEL", sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true}), 7},
		{"CUSUM", &baselines.CUSUM{Window: 60, Bootstraps: cfg.Bootstraps, MinRelRange: 2}, 7},
		{"MRLS", baselines.NewMRLS(), 1},
		{"WoW", baselines.NewWoW(), 7},
	}
	for _, e := range entries {
		curve, err := eval.ROCSweep(sc, e.scorer, e.persistence, 60, 12)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s AUC=%.3f ", e.name, eval.AUC(curve))
		for _, pt := range curve {
			fmt.Printf(" (%.2f,%.2f)", pt.FPR, pt.TPR)
		}
		fmt.Println()
	}
	return nil
}

// ablationBase builds one of three heterogeneous KPI bases — the same
// diversity the production mix has (§2.3): a flat sub-1-unit gauge, a
// ~50-unit stationary metric, and a bursty ~5000-unit counter. A single
// detection threshold must work across all of them, which is exactly
// what normalization buys.
func ablationBase(i int, seed int64) workload.Gen {
	switch i % 3 {
	case 0:
		return workload.NewStationary(0.62, 0.012, seed)
	case 1:
		return workload.NewStationary(50, 1, seed)
	default:
		return workload.NewVariable(5000, 0.25, seed)
	}
}

// ablationDetectionRates measures TPR/FPR/median delay of one scorer
// variant on 8σ shifts across the heterogeneous KPI mix, at a threshold
// calibrated on matching clean series.
func ablationDetectionRates(cfg sst.Config, seed int64) (tpr, fpr, medDelay float64) {
	const n, c, trials = 400, 250, 60
	scorer := sst.NewIKA(cfg)

	clean := make([][]float64, 9)
	for i := range clean {
		clean[i] = workload.Render(ablationBase(i, seed+int64(900+i)), n)
	}
	thr := 1.6
	if t, err := calibrate(scorer, clean); err == nil {
		thr = t
	}

	var tps, fps int
	var delays []float64
	for i := 0; i < trials; i++ {
		g := ablationBase(i, seed+int64(i))
		shifted := &workload.WithEffects{Base: g, Effects: []workload.Effect{{StartBin: c, Magnitude: 8 * g.Noise()}}}
		xs := workload.Render(shifted, n)
		if d, ok := firstDetection(scorer, thr, xs, c); ok {
			tps++
			delays = append(delays, float64(d))
		}
		quiet := workload.Render(ablationBase(i, seed+int64(5000+i)), n)
		if _, ok := firstDetection(scorer, thr, quiet, -1); ok {
			fps++
		}
	}
	med := stats.Median(delays)
	return float64(tps) / trials, float64(fps) / trials, med
}
