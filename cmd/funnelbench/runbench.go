// The -run-bench mode: a self-contained latency/allocation benchmark
// suite whose results are committed as BENCH_<n>.json at the repo root.
// Unlike `go test -bench`, it needs no test binary, pins its iteration
// counts (so CI runs are comparable), and records the pre-optimization
// baseline next to each fresh measurement. The -bench-check mode replays
// the suite and fails when an entry regresses against the committed
// baseline — on allocations for guarded entries (exact, the zero-alloc
// tripwire) and on ns/op for every entry (with generous headroom for CI
// host noise).
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/baselines"
	"repro/internal/changelog"
	"repro/internal/funnel"
	"repro/internal/sst"
	"repro/internal/workload"
)

// benchStats is one measurement triple.
type benchStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// benchEntry is one benchmark's record in the JSON file. Before is the
// measurement committed in the previous BENCH_<n>.json — the state of
// the code immediately prior to the optimization round this file
// records (same harness, same host class); it is absent for entries
// that are new in this round.
type benchEntry struct {
	Name       string      `json:"name"`
	Iters      int         `json:"iters"`
	AllocGuard bool        `json:"alloc_guard"`
	Before     *benchStats `json:"before,omitempty"`
	After      benchStats  `json:"after"`
}

// benchFile is the committed BENCH_<n>.json document.
type benchFile struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus,omitempty"`
	// CalibrationNs is the ns/op of a fixed floating-point kernel
	// measured on the host that produced this file. Checks re-measure
	// the same kernel and scale the ns/op gates by the ratio, so a
	// baseline recorded on a fast machine does not fail spuriously on a
	// slower CI host. Zero in older files means "no scaling".
	CalibrationNs float64      `json:"calibration_ns,omitempty"`
	Benchmarks    []benchEntry `json:"benchmarks"`
}

// calSink defeats dead-code elimination of the calibration kernel.
var calSink float64

// calibrateNs times a dependency-free sequential multiply-add sweep —
// the same shape as the scorers' inner loops — to fingerprint the
// host's single-core floating-point speed.
func calibrateNs() float64 {
	x := benchWindowSeries(2048)
	st := measure(2000, func() {
		var acc, m float64 = 0, 1
		for _, v := range x {
			m = m*0.999 + v*1e-6
			acc += v * m
		}
		calSink += acc
	})
	return st.NsPerOp
}

// measure times iters calls of f after a warm-up pass, reading the
// allocator counters around the loop. The warm-up fills sync.Pool
// workspaces and lazily-grown buffers so the loop sees steady state —
// the same discipline the testing.AllocsPerRun guards use.
func measure(iters int, f func()) benchStats {
	warm := iters / 10
	if warm < 2 {
		warm = 2
	}
	for i := 0; i < warm; i++ {
		f()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchStats{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
}

// benchWindowSeries mirrors the bench_test.go series: structure, noise
// and a level shift.
func benchWindowSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 10*math.Sin(2*math.Pi*float64(i)/240) + rng.NormFloat64()
		if i >= n/2 {
			x[i] += 8
		}
	}
	return x
}

// baselineBefore holds the previous round's committed measurements
// (BENCH_1.json "after": go1.24, Intel Xeon 2.10GHz container) keyed by
// entry name. Entries new in this round have no before.
var baselineBefore = map[string]benchStats{
	"per_window/funnel-ika":      {NsPerOp: 15170, AllocsPerOp: 0, BytesPerOp: 0},
	"per_window/robust-sst":      {NsPerOp: 31961, AllocsPerOp: 53, BytesPerOp: 12032},
	"per_window/classic-sst":     {NsPerOp: 29851, AllocsPerOp: 42, BytesPerOp: 10336},
	"per_window/cusum":           {NsPerOp: 574881, AllocsPerOp: 4, BytesPerOp: 6576},
	"per_window/mrls":            {NsPerOp: 564333, AllocsPerOp: 3090, BytesPerOp: 320934},
	"backfill/score-series-auto": {NsPerOp: 24229369, AllocsPerOp: 4, BytesPerOp: 16535},
	"fleet/assess-change":        {NsPerOp: 23753901, AllocsPerOp: 173, BytesPerOp: 699316},
	"fleet/assess-all-4":         {NsPerOp: 93586404, AllocsPerOp: 675, BytesPerOp: 2691408},
}

// runBenchSuite executes the suite. When checkPath is non-empty the
// results are compared against that baseline file and an error is
// returned on an allocation regression; otherwise the results are
// written to outPath.
func runBenchSuite(iters int, outPath, checkPath string) error {
	if iters < 10 {
		iters = 10
	}
	fmt.Printf("benchmark suite: %d iterations per scorer entry (%s %s/%s)\n",
		iters, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	cal := calibrateNs()
	fmt.Printf("host calibration kernel: %.0f ns/op\n", cal)

	var entries []benchEntry
	record := func(name string, n int, guard bool, st benchStats) {
		e := benchEntry{Name: name, Iters: n, AllocGuard: guard, After: st}
		if b, ok := baselineBefore[name]; ok {
			bb := b
			e.Before = &bb
		}
		entries = append(entries, e)
		fmt.Printf("  %-30s %12.0f ns/op %10.1f allocs/op %12.0f B/op\n",
			name, st.NsPerOp, st.AllocsPerOp, st.BytesPerOp)
	}
	add := func(name string, n int, guard bool, f func()) {
		record(name, n, guard, measure(n, f))
	}

	// Per-window scoring: the Table-2 quantity, one entry per method.
	x := benchWindowSeries(400)
	scorers := []struct {
		name   string
		scorer sst.Scorer
	}{
		{"per_window/funnel-ika", sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true})},
		{"per_window/robust-sst", sst.NewRobust(sst.Config{Normalize: true, RobustFilter: true})},
		{"per_window/classic-sst", sst.NewClassic(sst.Config{Normalize: true})},
		{"per_window/cusum", baselines.NewCUSUM()},
		{"per_window/mrls", baselines.NewMRLS()},
	}
	for _, c := range scorers {
		cfg := c.scorer.Config()
		t0 := cfg.PastSpan()
		span := len(x) - cfg.FutureSpan() - t0
		i := 0
		s := c.scorer
		add(c.name, iters, true, func() {
			s.ScoreAt(x, t0+i%span)
			i++
		})
	}

	// The incremental sliding sweep, amortized per window: each op is a
	// full ScoreRangeInto over the series, divided by the number of
	// window positions so the figure is directly comparable with the
	// per_window entries. The -warm variant additionally warm-starts the
	// future Lanczos solve with a reduced Krylov dimension — the funnel
	// detect path's configuration.
	for _, sv := range []struct {
		name string
		warm bool
	}{
		{"per_window/sliding-ika", false},
		{"per_window/sliding-ika-warm", true},
	} {
		sl := sst.NewSliding(sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true}))
		sl.WarmStart = sv.warm
		cfg := sl.Config()
		lo, hi := cfg.PastSpan(), len(x)-cfg.FutureSpan()+1
		out := make([]float64, len(x))
		sweepIters := iters / 10
		if sweepIters < 3 {
			sweepIters = 3
		}
		st := measure(sweepIters, func() {
			sl.ScoreRangeInto(out, x, lo, hi)
		})
		span := float64(hi - lo)
		st.NsPerOp /= span
		st.AllocsPerOp /= span
		st.BytesPerOp /= span
		record(sv.name, sweepIters, true, st)
	}

	// History backfill: the parallel batch-scoring path.
	long := benchWindowSeries(2048)
	ika := sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true})
	backIters := iters / 50
	if backIters < 3 {
		backIters = 3
	}
	add("backfill/score-series-auto", backIters, false, func() {
		sst.ScoreSeriesParallel(ika, long, 0)
	})

	// Fleet assessment: the full per-change pipeline and the AssessAll
	// fan-out the deployment runs tens of thousands of times per day.
	p := workload.DefaultParams()
	p.Changes = 4
	p.HistoryDays = 2
	sc, err := workload.Generate(p)
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	// Serial entry pinned to one worker so it stays comparable with the
	// BENCH_1 measurement; its wins are the algorithmic ones (sliding
	// scorer, memoized control averages). The -parallel entry is the
	// production default: GOMAXPROCS workers fanned over the impact set.
	assessor, err := funnel.NewAssessor(sc.Source, sc.Topo, funnel.Config{
		ServerMetrics:   workload.ServerMetrics(),
		InstanceMetrics: workload.InstanceMetrics(),
		HistoryDays:     2,
		AssessWorkers:   1,
	})
	if err != nil {
		return fmt.Errorf("new assessor: %w", err)
	}
	parAssessor, err := funnel.NewAssessor(sc.Source, sc.Topo, funnel.Config{
		ServerMetrics:   workload.ServerMetrics(),
		InstanceMetrics: workload.InstanceMetrics(),
		HistoryDays:     2,
	})
	if err != nil {
		return fmt.Errorf("new assessor: %w", err)
	}
	changes := make([]changelog.Change, 0, len(sc.Cases))
	for _, cs := range sc.Cases {
		changes = append(changes, cs.Change)
	}
	fleetIters := iters / 20
	if fleetIters < 3 {
		fleetIters = 3
	}
	ci := 0
	add("fleet/assess-change", fleetIters, false, func() {
		if _, err := assessor.Assess(changes[ci%len(changes)]); err != nil {
			panic(err)
		}
		ci++
	})
	ci = 0
	add("fleet/assess-change-parallel", fleetIters, false, func() {
		if _, err := parAssessor.Assess(changes[ci%len(changes)]); err != nil {
			panic(err)
		}
		ci++
	})
	allIters := iters / 50
	if allIters < 2 {
		allIters = 2
	}
	add("fleet/assess-all-4", allIters, false, func() {
		for _, r := range assessor.AssessAll(changes, 4) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
	})

	if checkPath != "" {
		return checkAgainstBaseline(checkPath, cal, entries)
	}
	return writeBenchFile(outPath, "funnel-bench/v1", cal, entries)
}

// writeBenchFile commits a measured entry set as a baseline document.
func writeBenchFile(outPath, schema string, cal float64, entries []benchEntry) error {
	doc := benchFile{
		Schema:        schema,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		CalibrationNs: cal,
		Benchmarks:    entries,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// nsHeadroom is the latency-gate multiplier: an entry fails when its
// measured ns/op exceeds this factor times the committed baseline. CI
// hosts are noisy — shared cores, frequency scaling, cold caches — so
// the headroom is generous; the gate exists to catch order-of-magnitude
// regressions (an accidentally reintroduced O(ω²) rebuild, a dropped
// memoization), not single-digit drift.
const nsHeadroom = 1.6

// checkAgainstBaseline fails on a regression against the committed
// baseline file. Two gates:
//
//   - Allocations (guarded entries only): no more than
//     ceil(1.2 × baseline) + 0.5 allocs per op. The half-alloc absolute
//     headroom absorbs stray background-runtime allocations landing
//     inside the measurement loop; any real hot-path regression costs at
//     least one full alloc per op, so a zero baseline still catches it.
//   - Latency (every entry present in the baseline): ns/op may not
//     exceed nsHeadroom × baseline, scaled by the calibration-kernel
//     ratio when the baseline recorded one — a host that runs the fixed
//     kernel 2× slower than the baseline host is allowed 2× the ns/op.
//     The scale never drops below 1: faster hosts keep the full gate.
//
// calNow is this run's calibration-kernel measurement (see calibrateNs).
func checkAgainstBaseline(path string, calNow float64, measured []benchEntry) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var doc benchFile
	if err := json.Unmarshal(buf, &doc); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	scale := 1.0
	if doc.CalibrationNs > 0 && calNow > doc.CalibrationNs {
		scale = calNow / doc.CalibrationNs
	}
	if scale != 1.0 {
		fmt.Printf("  host is %.2fx slower than the baseline host — ns gates scaled accordingly\n", scale)
	}
	base := make(map[string]benchEntry, len(doc.Benchmarks))
	for _, e := range doc.Benchmarks {
		base[e.Name] = e
	}
	failed := 0
	for _, m := range measured {
		b, ok := base[m.Name]
		if !ok {
			fmt.Printf("  %-30s SKIP (not in baseline)\n", m.Name)
			continue
		}
		bad := false
		if m.AllocGuard {
			allowed := math.Ceil(b.After.AllocsPerOp*1.2) + 0.5
			if m.After.AllocsPerOp > allowed {
				bad = true
				fmt.Printf("  %-30s FAIL %.1f allocs/op > allowed %.0f (baseline %.1f)\n",
					m.Name, m.After.AllocsPerOp, allowed, b.After.AllocsPerOp)
			}
		}
		if allowedNs := b.After.NsPerOp * nsHeadroom * scale; b.After.NsPerOp > 0 && m.After.NsPerOp > allowedNs {
			bad = true
			fmt.Printf("  %-30s FAIL %.0f ns/op > allowed %.0f (baseline %.0f)\n",
				m.Name, m.After.NsPerOp, allowedNs, b.After.NsPerOp)
		}
		if bad {
			failed++
			continue
		}
		fmt.Printf("  %-30s ok   %.1f allocs/op (baseline %.1f), %.0f ns/op (baseline %.0f)\n",
			m.Name, m.After.AllocsPerOp, b.After.AllocsPerOp, m.After.NsPerOp, b.After.NsPerOp)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed vs %s", failed, path)
	}
	fmt.Println("allocation and latency checks passed")
	return nil
}
