// Command kpigen emits synthetic KPI scenarios as JSON (the
// workload.Trace wire format) for use outside this repository —
// plotting, cross-language comparisons, regression fixtures. Traces
// round-trip: workload.LoadTrace + Trace.Build reconstruct an
// assessable source/topology/changelog from the file.
//
//	kpigen -changes 4 -history 2 -seed 1 -o scenario.json
//	kpigen -case redis -o redis.json
//	kpigen -case adclicks -o ads.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/changelog"
	"repro/internal/workload"
)

func main() {
	var (
		kind    = flag.String("case", "scenario", `what to emit: "scenario", "redis" or "adclicks"`)
		changes = flag.Int("changes", 4, "scenario: number of software changes")
		history = flag.Int("history", 2, "days of history per series")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "-", `output file ("-" = stdout)`)
	)
	flag.Parse()

	trace, err := build(*kind, *changes, *history, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpigen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpigen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, trace); err != nil {
		fmt.Fprintln(os.Stderr, "kpigen:", err)
		os.Exit(1)
	}
}

// build assembles the requested trace.
func build(kind string, changes, history int, seed int64) (*workload.Trace, error) {
	switch kind {
	case "scenario":
		p := workload.DefaultParams()
		p.Changes = changes
		p.HistoryDays = history
		p.Seed = seed
		sc, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		return workload.ExportTrace(sc), nil
	case "redis":
		rc, err := workload.GenerateRedis(workload.RedisParams{
			Seed: seed, ClassA: 8, ClassB: 8, HistoryDays: history,
			ShiftFraction: 0.4, ChangeMinuteOfDay: 700, UnaffectedPerClassAB: 102,
		})
		if err != nil {
			return nil, err
		}
		return caseTrace("redis", rc.Start, rc.Change, rc.Source), nil
	case "adclicks":
		ac, err := workload.GenerateAdClicks(workload.AdParams{
			Seed: seed, HistoryDays: history + 4, ChangeMinuteOfDay: 600,
			DropFraction: 0.3, FixAfterMinutes: 90, Instances: 8,
		})
		if err != nil {
			return nil, err
		}
		return caseTrace("adclicks", ac.Start, ac.Change, ac.Source), nil
	default:
		return nil, fmt.Errorf("unknown case %q", kind)
	}
}

// caseTrace wraps one case study's change and source into a trace.
func caseTrace(kind string, start time.Time, change changelog.Change, src *workload.MapSource) *workload.Trace {
	t := &workload.Trace{Kind: kind, Start: start, StepSec: 60}
	t.Changes = append(t.Changes, workload.TraceChange{
		ID: change.ID, Type: change.Type.String(), Service: change.Service,
		Servers: change.Servers, At: change.At,
	})
	for _, key := range src.Keys() {
		s, _ := src.Series(key)
		t.Series = append(t.Series, workload.TraceSeries{
			Scope: key.Scope.String(), Entity: key.Entity, Metric: key.Metric, Values: s.Values,
		})
	}
	return t
}
