// Command kpigen emits synthetic KPI scenarios as JSON (the
// workload.Trace wire format) for use outside this repository —
// plotting, cross-language comparisons, regression fixtures. Traces
// round-trip: workload.LoadTrace + Trace.Build reconstruct an
// assessable source/topology/changelog from the file.
//
//	kpigen -changes 4 -history 2 -seed 1 -o scenario.json
//	kpigen -case redis -o redis.json
//	kpigen -case adclicks -o ads.json
//
// With -load it instead becomes a fleet-scale load generator: it dials
// a funnelserve ingest port and publishes -servers × -kpis synthetic
// series over -bins one-minute bins, coalesced into batch frames of
// -batch measurements (0 = one frame per measurement), then prints the
// achieved throughput:
//
//	kpigen -load 127.0.0.1:7101 -servers 200 -kpis 10 -bins 120 -batch 64
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/changelog"
	"repro/internal/monitor"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	var (
		kind    = flag.String("case", "scenario", `what to emit: "scenario", "redis" or "adclicks"`)
		changes = flag.Int("changes", 4, "scenario: number of software changes")
		history = flag.Int("history", 2, "days of history per series")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "-", `output file ("-" = stdout)`)

		load    = flag.String("load", "", "ingest address to publish a synthetic fleet to instead of writing a trace (empty = off)")
		servers = flag.Int("servers", 100, "load: number of servers in the synthetic fleet")
		kpis    = flag.Int("kpis", 10, "load: KPIs per server")
		bins    = flag.Int("bins", 60, "load: one-minute bins to publish per KPI")
		batch   = flag.Int("batch", monitor.DefaultBatchSize, "load: measurements per batch frame (0 or 1 = one frame each)")
		epoch   = flag.String("epoch", "", "load: timestamp of the first bin (RFC3339; default now − bins)")
	)
	flag.Parse()

	if *load != "" {
		start := time.Now().UTC().Truncate(time.Minute).Add(-time.Duration(*bins) * time.Minute)
		if *epoch != "" {
			t, err := time.Parse(time.RFC3339, *epoch)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kpigen: bad -epoch:", err)
				os.Exit(2)
			}
			start = t
		}
		if err := runLoad(*load, *servers, *kpis, *bins, *batch, *seed, start); err != nil {
			fmt.Fprintln(os.Stderr, "kpigen:", err)
			os.Exit(1)
		}
		return
	}

	trace, err := build(*kind, *changes, *history, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpigen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpigen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, trace); err != nil {
		fmt.Fprintln(os.Stderr, "kpigen:", err)
		os.Exit(1)
	}
}

// build assembles the requested trace.
func build(kind string, changes, history int, seed int64) (*workload.Trace, error) {
	switch kind {
	case "scenario":
		p := workload.DefaultParams()
		p.Changes = changes
		p.HistoryDays = history
		p.Seed = seed
		sc, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		return workload.ExportTrace(sc), nil
	case "redis":
		rc, err := workload.GenerateRedis(workload.RedisParams{
			Seed: seed, ClassA: 8, ClassB: 8, HistoryDays: history,
			ShiftFraction: 0.4, ChangeMinuteOfDay: 700, UnaffectedPerClassAB: 102,
		})
		if err != nil {
			return nil, err
		}
		return caseTrace("redis", rc.Start, rc.Change, rc.Source), nil
	case "adclicks":
		ac, err := workload.GenerateAdClicks(workload.AdParams{
			Seed: seed, HistoryDays: history + 4, ChangeMinuteOfDay: 600,
			DropFraction: 0.3, FixAfterMinutes: 90, Instances: 8,
		})
		if err != nil {
			return nil, err
		}
		return caseTrace("adclicks", ac.Start, ac.Change, ac.Source), nil
	default:
		return nil, fmt.Errorf("unknown case %q", kind)
	}
}

// runLoad publishes a synthetic fleet to an ingest endpoint through a
// reconnecting batch publisher, then reports throughput. Values are a
// deterministic diurnal curve plus a per-series phase shift, so two
// runs with the same parameters publish identical measurements — a
// crash-recovery drill can compare stores across restarts.
func runLoad(addr string, servers, kpis, bins, batch int, seed int64, start time.Time) error {
	pub, err := monitor.DialRobustPublisher(addr, monitor.PublisherConfig{
		BatchSize:      batch,
		ReplayCapacity: 4 * servers * kpis,
	})
	if err != nil {
		return err
	}
	t0 := time.Now()
	total := 0
	for bin := 0; bin < bins; bin++ {
		t := start.Add(time.Duration(bin) * time.Minute)
		for s := 0; s < servers; s++ {
			for k := 0; k < kpis; k++ {
				key := topo.KPIKey{
					Scope:  topo.ScopeServer,
					Entity: fmt.Sprintf("srv-%d", s),
					Metric: fmt.Sprintf("load.kpi-%d", k),
				}
				phase := float64(seed) + float64(s*kpis+k)
				v := 50 + 10*math.Sin(2*math.Pi*(float64(bin)+phase)/1440)
				if err := pub.Publish(monitor.Measurement{Key: key, T: t, V: v}); err != nil {
					return err
				}
				total++
			}
		}
		if err := pub.Flush(); err != nil {
			return err
		}
	}
	if err := pub.Close(); err != nil {
		return err
	}
	elapsed := time.Since(t0)
	fmt.Printf("kpigen: published %d measurements (%d servers × %d KPIs × %d bins) in %v — %.0f meas/s, %d reconnects, %d dropped\n",
		total, servers, kpis, bins, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), pub.Reconnects(), pub.Dropped())
	return nil
}

// caseTrace wraps one case study's change and source into a trace.
func caseTrace(kind string, start time.Time, change changelog.Change, src *workload.MapSource) *workload.Trace {
	t := &workload.Trace{Kind: kind, Start: start, StepSec: 60}
	t.Changes = append(t.Changes, workload.TraceChange{
		ID: change.ID, Type: change.Type.String(), Service: change.Service,
		Servers: change.Servers, At: change.At,
	})
	for _, key := range src.Keys() {
		s, _ := src.Series(key)
		t.Series = append(t.Series, workload.TraceSeries{
			Scope: key.Scope.String(), Entity: key.Entity, Metric: key.Metric, Values: s.Values,
		})
	}
	return t
}
