// Command funnelserve runs FUNNEL as a network service (§5's deployed
// prototype): agents publish 1-minute KPI measurements to the ingest
// port, the operations team registers software changes over the admin
// port (one JSON object per line), other systems may subscribe to the
// measurement stream, and finished assessments print to stdout as each
// change's observation window completes.
//
//	funnelserve -ingest :7101 -subscribe :7102 -admin :7103 \
//	    -server-metrics mem.util,cpu.ctxswitch \
//	    -instance-metrics pv.count,rt.delay -history 7
//
// Register a change:
//
//	echo '{"id":"chg-1","type":"upgrade","service":"kv.cache",
//	       "servers":["srv-1"],"at":"2015-12-03T12:00:00Z"}' | nc host 7103
//
// The -debug address serves the telemetry surface: /metrics (expvar
// JSON with pipeline stage histograms; ?format=prom for the Prometheus
// text exposition), /metrics/history (the self-scrape ring cmd/funneltop
// renders), /debug/pprof/* and /traces/<change-id> (the per-KPI
// assessment trace). Structured logging is tuned with -v (0/1/2) and
// -log-json.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/daemon"
	"repro/internal/funnel"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	var (
		ingest    = flag.String("ingest", "127.0.0.1:7101", "measurement ingest listen address")
		subscribe = flag.String("subscribe", "127.0.0.1:7102", "subscription push listen address (empty = off)")
		admin     = flag.String("admin", "127.0.0.1:7103", "change-registration listen address")
		history   = flag.Int("history", 7, "days of history kept for the seasonal DiD baseline")
		serverM   = flag.String("server-metrics", "mem.util,cpu.ctxswitch", "comma-separated server metrics")
		instM     = flag.String("instance-metrics", "", "comma-separated instance metrics")
		epoch     = flag.String("epoch", "", "store epoch (RFC3339; default now − history − 1 day)")
		asJSON    = flag.Bool("json", false, "emit reports as JSON instead of text")
		debug     = flag.String("debug", "127.0.0.1:7104", "telemetry HTTP listen address: /metrics, /debug/pprof/*, /traces/<id> (empty = off)")
		upstream  = flag.String("upstream", "", "subscribe-port address of another funnelserve to mirror measurements from (reconnects with backoff; empty = off)")
		data      = flag.String("data", "", "directory for write-ahead persistence: every measurement is logged before ingest acks and a restart replays to the exact pre-crash store (empty = in-memory only)")
		shards    = flag.Int("shards", monitor.StoreShards, "store lock-stripe count")
		verbose   = flag.Int("v", 0, "log verbosity to stderr: 0 = off, 1 = info, 2 = debug")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON (one object per line) instead of text")
		histStep  = flag.Duration("history-step", obs.DefaultHistoryStep, "metrics-history self-scrape cadence (/metrics/history)")
		histSpan  = flag.Duration("history-retention", obs.DefaultHistoryRetention, "metrics-history span kept in memory")
		fsck      = flag.Bool("fsck", false, "verify the -data directory (snapshot CRCs, WAL framing) and exit: 0 clean, 1 damage found")
		fsckFix   = flag.Bool("fsck-repair", false, "with -fsck: drop quarantined chunks as explicit gaps and rewrite a clean snapshot")
		stream    = flag.Bool("stream", false, "assess on ingest: advance per-KPI change scores as each bin lands (identical reports, much lower bin-to-verdict latency)")
		streamWrk = flag.Int("stream-workers", 0, "with -stream: scoring worker goroutines (0 = default)")
		streamQ   = flag.Int("stream-queue", 0, "with -stream: bounded advance-queue depth; overflow sheds to the batch sweep (0 = default)")
	)
	flag.Parse()

	if *fsck || *fsckFix {
		os.Exit(runFsck(*data, *fsckFix))
	}

	var logger *slog.Logger
	if *verbose > 0 {
		level := slog.LevelInfo
		if *verbose >= 2 {
			level = slog.LevelDebug
		}
		logger = obs.NewLogger(os.Stderr, level, *logJSON)
	}

	start := time.Now().UTC().Truncate(time.Minute).AddDate(0, 0, -*history-1)
	if *epoch != "" {
		t, err := time.Parse(time.RFC3339, *epoch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "funnelserve: bad -epoch:", err)
			os.Exit(2)
		}
		start = t
	}
	var store *monitor.Store
	if *data != "" {
		var err error
		store, err = monitor.OpenPersistent(*data, start, time.Minute, monitor.PersistOptions{Shards: *shards})
		if err != nil {
			fmt.Fprintln(os.Stderr, "funnelserve: open data dir:", err)
			os.Exit(1)
		}
		if rec := store.Recovered(); rec.SnapshotSeries > 0 || rec.WALRecords > 0 || rec.TornTails > 0 {
			fmt.Printf("funnelserve: recovered %d series from snapshot, %d WAL records (%d torn tails discarded)\n",
				rec.SnapshotSeries, rec.WALRecords, rec.TornTails)
		}
		start = store.Start() // a recovered epoch wins over the flag
	} else {
		store = monitor.NewStoreShards(start, time.Minute, *shards)
	}
	defer store.Close()

	d, err := daemon.Start(daemon.Config{
		Store: store,
		Pipeline: funnel.Config{
			ServerMetrics:   splitList(*serverM),
			InstanceMetrics: splitList(*instM),
			HistoryDays:     *history,
		},
		IngestAddr:       *ingest,
		SubscribeAddr:    *subscribe,
		AdminAddr:        *admin,
		DebugAddr:        *debug,
		Logger:           logger,
		HistoryStep:      *histStep,
		HistoryRetention: *histSpan,
		Stream:           *stream,
		StreamWorkers:    *streamWrk,
		StreamQueue:      *streamQ,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "funnelserve:", err)
		os.Exit(1)
	}
	defer d.Close()
	col := d.Collector()

	mode := "pull"
	if *stream {
		mode = "stream"
	}
	fmt.Printf("funnelserve: ingest=%v subscribe=%v admin=%v debug=%v epoch=%s history=%dd mode=%s\n",
		d.IngestAddr(), d.SubscribeAddr(), d.AdminAddr(), d.DebugAddr(), start.Format(time.RFC3339), *history, mode)

	// Mirror another funnelserve's measurement stream into the local
	// store over a reconnecting subscription: flaps redial with backoff
	// and resume from the last seen bin, so a follower daemon survives
	// leader restarts without losing stored bins.
	if *upstream != "" {
		cli, err := monitor.DialConfig(*upstream, monitor.ClientConfig{Reconnect: true, Obs: col})
		if err != nil {
			fmt.Fprintln(os.Stderr, "funnelserve: upstream dial:", err)
			os.Exit(1)
		}
		defer cli.Close()
		go func() {
			for m := range cli.C() {
				store.Append(m)
			}
			// A closed stream with a nil Err is a deliberate shutdown;
			// anything else means the reconnect budget ran out.
			if err := cli.Err(); err != nil && logger != nil {
				logger.Error("upstream feed lost", "addr", *upstream,
					"reconnects", cli.Reconnects(), "err", err)
			}
		}()
		if logger != nil {
			logger.Info("mirroring upstream", "addr", *upstream)
		}
	}

	// Reports stream until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case rep, ok := <-d.Reports():
			if !ok {
				return
			}
			t0 := col.Now()
			if *asJSON {
				err = report.WriteJSON(os.Stdout, []*funnel.Report{rep})
			} else {
				err = report.WriteText(os.Stdout, rep, false)
			}
			col.ObserveSince(obs.StageRender, t0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "funnelserve:", err)
			}
			if logger != nil {
				logger.Info("report emitted", "change", rep.Change.ID, "flagged", len(rep.Flagged()))
			}
		case <-sig:
			fmt.Println("funnelserve: shutting down")
			return
		}
	}
}

// splitList parses a comma-separated flag into a clean slice.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runFsck verifies (and with repair, fixes) a persistence directory,
// printing a per-file health report. Exit codes: 0 the directory is
// clean (or was repaired), 1 damage remains, 2 usage error.
func runFsck(dir string, repair bool) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "funnelserve: -fsck requires -data")
		return 2
	}
	rep, err := monitor.Fsck(dir, nil, repair)
	if err != nil {
		fmt.Fprintln(os.Stderr, "funnelserve: fsck:", err)
		return 1
	}
	if rep.SnapshotPresent {
		fmt.Printf("snapshot: %d series, %d chunks, %d quarantined\n",
			rep.SnapshotSeries, rep.Chunks, rep.QuarantinedChunks)
	} else {
		fmt.Println("snapshot: none")
	}
	for _, w := range rep.WALs {
		switch {
		case w.ReadError != nil:
			fmt.Printf("%s: UNREADABLE: %v\n", w.Path, w.ReadError)
		case w.TornTail:
			fmt.Printf("%s: %d records, torn tail discarded\n", w.Path, w.Records)
		default:
			fmt.Printf("%s: %d records, clean\n", w.Path, w.Records)
		}
	}
	switch {
	case rep.Repaired:
		fmt.Printf("repaired: %d quarantined chunks dropped as explicit gaps, snapshot rewritten\n", rep.DroppedChunks)
		return 0
	case rep.Healthy():
		fmt.Println("clean")
		return 0
	default:
		fmt.Println("damage found (run with -fsck-repair to consolidate)")
		return 1
	}
}
