// Command funnel runs the FUNNEL assessment pipeline over a generated
// scenario and prints, for each software change, the KPI changes
// attributed to it — the report the operations team receives (step 12
// of the paper's Fig. 3).
//
//	funnel -changes 8 -history 3 -seed 42 [-v] [-json] [-workers 8]
//	funnel -trace scenario.json [-v] [-json]      # assess an exported trace
//	funnel -detector edivisive -causality bsts    # swap pipeline stages
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/changelog"
	"repro/internal/funnel"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/workload"
)

// detectorName and causalityName carry the -detector / -causality flag
// values to both assessor construction sites.
var detectorName, causalityName string

func main() {
	var (
		changes   = flag.Int("changes", 8, "number of software changes to simulate and assess")
		history   = flag.Int("history", 3, "days of KPI history per series")
		seed      = flag.Int64("seed", 1, "scenario seed")
		verbose   = flag.Bool("v", false, "also print KPIs whose changes were excluded or absent")
		asJSON    = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		workers   = flag.Int("workers", 0, "parallel assessment workers (0 = GOMAXPROCS)")
		trends    = flag.Bool("trends", false, "run the parallel-trends placebo diagnostics")
		summarize = flag.Bool("summary", false, "print a one-line-per-change summary instead of full reports")
		traceFile = flag.String("trace", "", "assess a workload.Trace JSON file instead of generating a scenario")
		timings   = flag.Bool("timings", false, "instrument the pipeline and dump stage metrics to stderr after the run")
		detector  = flag.String("detector", "", "change detector to run (see funnel.Detectors; \"\" = the deployed SST scorer)")
		causality = flag.String("causality", "", "causality stage: \"did\" (classical, default) or \"bsts\" (Bayesian structural time series)")
	)
	flag.Parse()
	detectorName, causalityName = *detector, *causality

	var col *obs.Collector
	if *timings {
		col = obs.NewCollector()
	}
	var err error
	if *traceFile != "" {
		err = runTrace(*traceFile, *history, *verbose, *asJSON, *workers, *summarize, col)
	} else {
		err = run(*changes, *history, *seed, *verbose, *asJSON, *workers, *trends, *summarize, col)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "funnel:", err)
		os.Exit(1)
	}
	if col != nil {
		if err := col.WriteMetrics(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "funnel:", err)
			os.Exit(1)
		}
	}
}

// runTrace assesses every change of an exported trace file.
func runTrace(path string, history int, verbose, asJSON bool, workers int, summarize bool, col *obs.Collector) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.LoadTrace(f)
	if err != nil {
		return err
	}
	source, tp, log, _, err := tr.Build()
	if err != nil {
		return err
	}
	assessor, err := funnel.NewAssessor(source, tp, funnel.Config{
		ServerMetrics:   traceMetrics(tr, "server"),
		InstanceMetrics: traceMetrics(tr, "instance"),
		HistoryDays:     history,
		Detector:        detectorName,
		Causality:       causalityName,
		Obs:             col,
	})
	if err != nil {
		return err
	}
	results := assessor.AssessAll(log.All(), workers)
	reports := make([]*funnel.Report, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("assessing %s: %w", r.Change.ID, r.Err)
		}
		reports = append(reports, r.Report)
	}
	return emit(reports, verbose, asJSON, summarize)
}

// traceMetrics collects the distinct metric names of one scope from a
// trace.
func traceMetrics(tr *workload.Trace, scope string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range tr.Series {
		if s.Scope == scope && !seen[s.Metric] {
			seen[s.Metric] = true
			out = append(out, s.Metric)
		}
	}
	return out
}

// emit renders reports in the selected format.
func emit(reports []*funnel.Report, verbose, asJSON, summarize bool) error {
	switch {
	case asJSON:
		return report.WriteJSON(os.Stdout, reports)
	case summarize:
		fmt.Print(report.Summary(reports))
		return nil
	default:
		for _, rep := range reports {
			if err := report.WriteText(os.Stdout, rep, verbose); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
}

func run(changes, history int, seed int64, verbose, asJSON bool, workers int, trends, summarize bool, col *obs.Collector) error {
	p := workload.DefaultParams()
	p.Changes = changes
	p.HistoryDays = history
	p.Seed = seed
	sc, err := workload.Generate(p)
	if err != nil {
		return err
	}
	assessor, err := funnel.NewAssessor(sc.Source, sc.Topo, funnel.Config{
		ServerMetrics:        workload.ServerMetrics(),
		InstanceMetrics:      workload.InstanceMetrics(),
		HistoryDays:          history,
		Detector:             detectorName,
		Causality:            causalityName,
		VerifyParallelTrends: trends,
		Obs:                  col,
	})
	if err != nil {
		return err
	}

	batch := make([]changelog.Change, 0, len(sc.Cases))
	for _, cs := range sc.Cases {
		batch = append(batch, cs.Change)
	}
	results := assessor.AssessAll(batch, workers)

	reports := make([]*funnel.Report, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("assessing %s: %w", r.Change.ID, r.Err)
		}
		reports = append(reports, r.Report)
	}

	return emit(reports, verbose, asJSON, summarize)
}
