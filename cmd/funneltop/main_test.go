package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fixtureServer runs a real collector behind its debug handler, with a
// populated history ring and one stored trace — funneltop's poll path
// exercised against the same surface funnelserve serves.
func fixtureServer(t *testing.T) *httptest.Server {
	t.Helper()
	c := obs.NewCollector()
	c.Add(obs.CtrIngested, 5000)
	c.Add(obs.CtrConnsActive, 2)
	c.Add(obs.CtrBatchFrames, 12)
	c.SetGaugeFunc(obs.LabeledName("monitor.shard_series", "shard", "0"), func() int64 { return 40 })
	c.SetGaugeFunc(obs.LabeledName("monitor.shard_series", "shard", "1"), func() int64 { return 44 })
	c.SetGaugeFunc("monitor.store_chunks", func() int64 { return 672 })
	c.SetGaugeFunc("monitor.store_compressed_bytes", func() int64 { return 1 << 20 })
	c.SetGaugeFunc("monitor.store_raw_bytes", func() int64 { return 4 << 20 })
	c.Observe(obs.StageAssess, 3*time.Millisecond)
	c.Observe(obs.StageBinToVerdict, 42*time.Second)
	c.Add(obs.CtrStreamAdvances, 4821)
	c.Add(obs.CtrStreamCacheHits, 97)
	c.Add(obs.CtrStreamCacheMisses, 3)
	c.Add(obs.CtrStreamInvalidations, 2)
	c.SetGaugeFunc(obs.GaugeStreamQueue, func() int64 { return 3 })
	c.SetGaugeFunc(obs.GaugeStreamTracked, func() int64 { return 12 })
	c.SetGaugeFunc(obs.GaugeStreamPending, func() int64 { return 1 })
	// Hour-long step: the synchronous first scrape fills the ring and
	// the ticker stays quiet for the test's lifetime.
	c.StartHistory(time.Hour, 2*time.Hour)
	t.Cleanup(c.StopHistory)

	tr := &obs.Trace{
		ChangeID: "chg-9", Service: "kv.cache", Nanos: 1_500_000,
		BinToVerdictNanos: 42_000_000_000,
	}
	tr.Add(&obs.KPITrace{Key: "server/s-0/mem.util", Verdict: "changed-by-software",
		BinToVerdictNanos: 42_000_000_000})
	tr.Add(&obs.KPITrace{Key: "server/s-1/mem.util", Verdict: "no-change"})
	c.PutTrace(tr)

	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestPollAndRender drives the full dashboard path: poll the debug
// surface, render a frame, and check every panel shows up with the
// fixture's numbers.
func TestPollAndRender(t *testing.T) {
	srv := fixtureServer(t)
	snap, err := poll(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.hist.Times) == 0 {
		t.Fatal("poll returned an empty history ring")
	}
	if len(snap.traces) != 1 || snap.traces[0].ChangeID != "chg-9" {
		t.Fatalf("traces = %+v", snap.traces)
	}

	var buf bytes.Buffer
	render(&buf, "127.0.0.1:7104", snap)
	out := buf.String()
	for _, want := range []string{
		"funneltop — 127.0.0.1:7104",
		"total 5000",      // ingest lifetime counter
		"2 stripes",       // shard panel found both gauges
		"min 40 max 44",   // per-shard spread
		"(balanced)",      //
		"1.0MiB resident", // compressed-store panel
		"chunks 672",      //
		"ratio 4.0×",      //
		"bin_to_verdict",  // stage panel includes the new stage
		"tracked 12",      // streaming panel: score-state population
		"advances 4821",   //
		"cache-hit 97%",   //
		"b2v p99",         // freshness-SLO sparkline line
		"verdicts 1",      //
		"chg-9",           // recent-verdicts panel
		" 1/ 2 flagged",   // one flagged KPI of two
		"b2v 42s",         // end-to-end latency rendered
		"recent verdicts", //
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestRenderEmpty pins the no-data frame: a daemon that just started
// (empty ring, no traces) must render, not crash.
func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, "x", &snapshot{})
	if !strings.Contains(buf.String(), "none yet") {
		t.Fatalf("empty frame = %q", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 4, 8}, 5); got != "▁▁▂▄█" {
		t.Errorf("sparkline = %q", got)
	}
	// Short series left-pad to the window width.
	if got := sparkline([]float64{1}, 3); got != "··█" {
		t.Errorf("padded sparkline = %q", got)
	}
	// Flat-zero and empty series render at the floor.
	if got := sparkline(nil, 2); got != "··" {
		t.Errorf("empty sparkline = %q", got)
	}
	if got := sparkline([]float64{0, 0}, 2); got != "▁▁" {
		t.Errorf("flat sparkline = %q", got)
	}
}

func TestShardIndex(t *testing.T) {
	if idx, ok := shardIndex(`monitor.shard_series{shard="7"}`, "monitor.shard_series"); !ok || idx != 7 {
		t.Errorf("shardIndex = %d, %v", idx, ok)
	}
	for _, bad := range []string{
		"monitor.shard_series",                      // no labels
		`monitor.shard_series{shard="x"}`,           // non-numeric
		`monitor.shard_wal_bytes{shard="1"}`,        // different base
		`monitor.shard_series{shard="1",extra="y"}`, // trailing labels
	} {
		if _, ok := shardIndex(bad, "monitor.shard_series"); ok {
			t.Errorf("shardIndex accepted %q", bad)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0B"}, {512, "512B"}, {2048, "2.0KiB"},
		{3 << 20, "3.0MiB"}, {5 << 30, "5.0GiB"},
	} {
		if got := formatBytes(tc.in); got != tc.want {
			t.Errorf("formatBytes(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBalanceNote(t *testing.T) {
	if got := balanceNote(10, 12); got != "(balanced)" {
		t.Errorf("balanceNote(10,12) = %q", got)
	}
	if got := balanceNote(1, 100); got != "(skewed)" {
		t.Errorf("balanceNote(1,100) = %q", got)
	}
}

func TestStreamPanel(t *testing.T) {
	// A pull-mode daemon exposes no streamer telemetry: no panel.
	if lines := streamPanel(&obs.HistoryDump{Series: map[string][]float64{}}); lines != nil {
		t.Fatalf("pull-mode daemon rendered a stream panel: %q", lines)
	}

	// An attached-but-idle streamer (queue gauge registered, nothing
	// advanced yet) still surfaces, so the operator sees it is wired up.
	h := &obs.HistoryDump{Series: map[string][]float64{
		obs.GaugeStreamQueue: {0},
	}}
	lines := streamPanel(h)
	if len(lines) != 1 || !strings.Contains(lines[0], "cache-hit n/a") {
		t.Fatalf("idle streamer panel = %q", lines)
	}

	// Sheds are an incident, not a statistic: they render in caps.
	h.Series[obs.CtrStreamSheds] = []float64{7}
	h.Series[obs.CtrStreamCacheHits] = []float64{3}
	h.Series[obs.CtrStreamCacheMisses] = []float64{1}
	lines = streamPanel(h)
	if len(lines) != 1 || !strings.Contains(lines[0], "SHEDS 7") || !strings.Contains(lines[0], "cache-hit 75%") {
		t.Fatalf("shedding streamer panel = %q", lines)
	}
}

func TestDiskHealthLine(t *testing.T) {
	// No persistence telemetry at all: the panel stays hidden.
	if line := diskHealthLine(&obs.HistoryDump{Series: map[string][]float64{}}); line != "" {
		t.Fatalf("in-memory store rendered a disk panel: %q", line)
	}

	h := &obs.HistoryDump{Series: map[string][]float64{
		"monitor.persist_state": {0},
	}}
	if line := diskHealthLine(h); line != "HEALTHY" {
		t.Fatalf("healthy line = %q", line)
	}

	h.Series["monitor.persist_state"] = []float64{1}
	h.Series["monitor.disk_errors"] = []float64{3}
	h.Series["monitor.wal_rearms"] = []float64{0}
	line := diskHealthLine(h)
	if !strings.Contains(line, "DEGRADED") || !strings.Contains(line, "errors 3") {
		t.Fatalf("degraded line = %q", line)
	}

	h.Series["monitor.persist_state"] = []float64{2}
	h.Series["monitor.quarantined_chunks"] = []float64{2}
	h.Series["monitor.degraded_reads"] = []float64{17}
	line = diskHealthLine(h)
	if !strings.Contains(line, "FAILED") || !strings.Contains(line, "QUARANTINED CHUNKS 2") ||
		!strings.Contains(line, "degraded reads 17") {
		t.Fatalf("failed+quarantine line = %q", line)
	}

	// Quarantines alone (in-memory store restored from a damaged
	// snapshot) surface the panel too.
	q := &obs.HistoryDump{Series: map[string][]float64{
		"monitor.quarantined_chunks": {1},
	}}
	if line := diskHealthLine(q); !strings.Contains(line, "QUARANTINED CHUNKS 1") {
		t.Fatalf("quarantine-only line = %q", line)
	}
}
