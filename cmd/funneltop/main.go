// Command funneltop is a live terminal dashboard over a running
// funnelserve's telemetry surface. It polls /metrics/history (the
// daemon's self-scrape ring) and /traces, and renders an operator view:
// ingest rate, store shard balance, WAL churn, the streaming
// assessor's backlog and p99 bin-to-verdict trajectory, per-stage
// latency quantiles as sparklines, and the most recent verdicts with
// their end-to-end bin-to-verdict latency.
//
//	funneltop -addr 127.0.0.1:7104
//	funneltop -addr 127.0.0.1:7104 -once        # one frame, no ANSI clear
//	funneltop -addr 127.0.0.1:7104 -frames 10   # ten frames, then exit
//
// The dashboard needs nothing beyond the daemon's own -debug endpoint;
// there is no agent to install and no state kept between frames.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7104", "funnelserve -debug address to poll")
		interval = flag.Duration("interval", 2*time.Second, "poll and redraw cadence")
		once     = flag.Bool("once", false, "render a single frame and exit (no screen clear)")
		frames   = flag.Int("frames", 0, "exit after this many frames (0 = run until interrupted)")
	)
	flag.Parse()

	base := "http://" + *addr
	for n := 0; ; n++ {
		snap, err := poll(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "funneltop:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		render(os.Stdout, *addr, snap)
		if *once || (*frames > 0 && n+1 >= *frames) {
			return
		}
		time.Sleep(*interval)
	}
}

// snapshot is one poll of the daemon's telemetry surface.
type snapshot struct {
	hist   obs.HistoryDump
	traces []*obs.Trace // most recent last, at most maxTraces
}

const maxTraces = 5

// poll fetches the history ring and the tail of the trace store.
func poll(base string) (*snapshot, error) {
	s := &snapshot{}
	if err := getJSON(base+"/metrics/history", &s.hist); err != nil {
		return nil, err
	}
	var ids []string
	if err := getJSON(base+"/traces", &ids); err != nil {
		return nil, err
	}
	if len(ids) > maxTraces {
		ids = ids[len(ids)-maxTraces:]
	}
	for _, id := range ids {
		var tr obs.Trace
		if err := getJSON(base+"/traces/"+id, &tr); err != nil {
			continue // trace may have been evicted between the two requests
		}
		s.traces = append(s.traces, &tr)
	}
	return s, nil
}

// getJSON fetches one URL and decodes its JSON body.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("GET %s: %v", url, err)
	}
	return nil
}

// render draws one frame. It is a pure function of the snapshot so the
// dashboard is testable without a terminal.
func render(w io.Writer, addr string, s *snapshot) {
	h := &s.hist
	fmt.Fprintf(w, "funneltop — %s — %s up %s  goroutines %.0f  heap %s\n",
		addr, time.Now().Format("15:04:05"),
		(time.Duration(last(h.Series["uptime_seconds"])) * time.Second).Truncate(time.Second),
		last(h.Series["runtime.goroutines"]),
		formatBytes(last(h.Series["runtime.heap_bytes"])))
	fmt.Fprintf(w, "history: %d samples @ %gs\n\n", len(h.Times), h.StepSeconds)

	// Ingest panel: per-second rate trajectory plus lifetime total.
	rates := h.Rates[obs.CtrIngested]
	fmt.Fprintf(w, "ingest   %s %8.0f/s  total %.0f  batches %.0f  rejects %.0f\n",
		sparkline(rates, 30), last(rates),
		last(h.Series[obs.CtrIngested]),
		last(h.Series[obs.CtrBatchFrames]),
		last(h.Series[obs.CtrFrameRejects]))
	fmt.Fprintf(w, "conns    active %.0f  subs %.0f  reconnects %.0f  drops %.0f\n",
		last(h.Series[obs.CtrConnsActive]),
		last(h.Series[obs.CtrSubsActive]),
		last(h.Series[obs.CtrReconnects]),
		last(h.Series[obs.CtrConnDrops]))

	// Shard balance: the per-shard series-count gauges, if registered.
	if shards := shardSeries(h, "monitor.shard_series"); len(shards) > 0 {
		lo, hi, total := shardSpread(shards)
		fmt.Fprintf(w, "shards   %d stripes  series/shard min %d max %d  total %d %s\n",
			len(shards), lo, hi, total, balanceNote(lo, hi))
	}

	// Chunked-store compression: sealed chunks and how far below the
	// flat []float64 footprint the resident bytes sit.
	if comp := last(h.Series["monitor.store_compressed_bytes"]); comp > 0 {
		raw := last(h.Series["monitor.store_raw_bytes"])
		note := ""
		if raw > 0 {
			note = fmt.Sprintf("  ratio %.1f×", raw/comp)
		}
		fmt.Fprintf(w, "store    %s resident (flat %s)  chunks %.0f%s\n",
			formatBytes(comp), formatBytes(raw),
			last(h.Series["monitor.store_chunks"]), note)
	}

	// WAL churn, present only for persistent stores.
	if wb := last(h.Series["monitor.wal_bytes"]); wb > 0 || len(h.Series[obs.CtrWALAppends]) > 0 {
		fmt.Fprintf(w, "wal      %s on disk  appends %.0f  syncs %.0f  compactions %.0f  rotations %d\n",
			formatBytes(wb),
			last(h.Series[obs.CtrWALAppends]),
			last(h.Series[obs.CtrWALSyncs]),
			last(h.Series[obs.CtrCompactions]),
			sumShards(h, "monitor.shard_rotations"))
	}

	// Disk health: persist state, quarantined chunks and degraded reads
	// — the operator's first stop when a verdict comes back degraded.
	if line := diskHealthLine(h); line != "" {
		fmt.Fprintf(w, "disk     %s\n", line)
	}

	// Streaming assessment, present only when a streamer is attached:
	// backlog pressure (queue depth and sheds), the score-state
	// population, cache economics, and the freshness SLO itself — the
	// p99 bin-to-verdict trajectory.
	for _, line := range streamPanel(h) {
		fmt.Fprintf(w, "%s\n", line)
	}

	// Stage latency panel: p99 trajectory as a sparkline, current
	// p50/p99, and the cumulative observation count.
	fmt.Fprintf(w, "\n%-16s %-32s %10s %10s %8s\n", "stage", "p99 trend", "p50", "p99", "count")
	for _, stage := range []string{
		obs.StageImpactSet, obs.StageSSTWindow, obs.StageSSTScore,
		obs.StageDiDControl, obs.StageDiDEstimate, obs.StagePersist,
		obs.StageAssess, obs.StageBinToVerdict,
	} {
		st, ok := h.Stages[stage]
		if !ok || len(st.Count) == 0 || st.Count[len(st.Count)-1] == 0 {
			continue
		}
		p99s := make([]float64, len(st.P99us))
		for i, v := range st.P99us {
			p99s[i] = float64(v)
		}
		n := len(st.Count) - 1
		fmt.Fprintf(w, "%-16s %-32s %10s %10s %8d\n", stage,
			sparkline(p99s, 30),
			formatMicros(st.P50us[n]), formatMicros(st.P99us[n]), st.Count[n])
	}

	// Recent verdicts with their end-to-end freshness.
	fmt.Fprintf(w, "\nrecent verdicts (newest last)\n")
	if len(s.traces) == 0 {
		fmt.Fprintf(w, "  none yet\n")
	}
	for _, tr := range s.traces {
		flagged := 0
		for _, k := range tr.KPIs {
			if k.Verdict == "changed-by-software" {
				flagged++
			}
		}
		b2v := "b2v n/a"
		if tr.BinToVerdictNanos > 0 {
			b2v = "b2v " + time.Duration(tr.BinToVerdictNanos).Truncate(time.Millisecond).String()
		}
		fmt.Fprintf(w, "  %-12s %-14s %2d/%2d flagged  %s  assess %s\n",
			tr.ChangeID, tr.Service, flagged, len(tr.KPIs), b2v,
			time.Duration(tr.Nanos).Truncate(time.Microsecond))
	}
}

// last returns the final element of a series, 0 when empty.
func last(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// sparkline renders the tail of a series as a fixed-width bar string,
// scaled to the window's own maximum. An empty series renders as
// dashes so panel columns stay aligned.
func sparkline(s []float64, width int) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	if len(s) > width {
		s = s[len(s)-width:]
	}
	var max float64
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	out := make([]rune, 0, width)
	for i := 0; i < width-len(s); i++ {
		out = append(out, '·')
	}
	for _, v := range s {
		if max <= 0 || v <= 0 {
			out = append(out, levels[0])
			continue
		}
		idx := int(v / max * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		out = append(out, levels[idx])
	}
	return string(out)
}

// shardSeries collects the latest value of every labeled per-shard
// gauge with the given base name, keyed by shard index.
func shardSeries(h *obs.HistoryDump, base string) map[int]int64 {
	out := map[int]int64{}
	for name, series := range h.Series {
		idx, ok := shardIndex(name, base)
		if !ok {
			continue
		}
		out[idx] = int64(last(series))
	}
	return out
}

// shardIndex parses `base{shard="N"}` registry names.
func shardIndex(name, base string) (int, bool) {
	rest, ok := strings.CutPrefix(name, base+`{shard="`)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, `"}`)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// shardSpread reduces the per-shard map to min, max and total.
func shardSpread(shards map[int]int64) (lo, hi, total int64) {
	keys := make([]int, 0, len(shards))
	for k := range shards {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	lo = shards[keys[0]]
	for _, k := range keys {
		v := shards[k]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		total += v
	}
	return lo, hi, total
}

// balanceNote flags a visibly skewed shard distribution.
func balanceNote(lo, hi int64) string {
	if hi > 0 && lo*4 < hi {
		return "(skewed)"
	}
	return "(balanced)"
}

// sumShards totals a labeled per-shard counter family.
func sumShards(h *obs.HistoryDump, base string) int64 {
	var total int64
	for _, v := range shardSeries(h, base) {
		total += v
	}
	return total
}

// formatMicros renders a microsecond quantile as a human duration.
func formatMicros(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).String()
}

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// streamPanel renders the streaming-assessment panel, or nil when the
// collector carries no streamer telemetry (pull-mode daemon). The
// first line is backlog and cache state; the second, present once any
// verdict has been stamped, is the p99 bin-to-verdict sparkline — the
// SLO the streaming mode exists to hold down.
func streamPanel(h *obs.HistoryDump) []string {
	queueSeries, attached := h.Series[obs.GaugeStreamQueue]
	advances := last(h.Series[obs.CtrStreamAdvances])
	if !attached && advances == 0 {
		return nil
	}
	hits := last(h.Series[obs.CtrStreamCacheHits])
	misses := last(h.Series[obs.CtrStreamCacheMisses])
	hitRate := "n/a"
	if hits+misses > 0 {
		hitRate = fmt.Sprintf("%.0f%%", 100*hits/(hits+misses))
	}
	shedNote := ""
	if sheds := last(h.Series[obs.CtrStreamSheds]); sheds > 0 {
		shedNote = fmt.Sprintf("  SHEDS %.0f", sheds)
	}
	lines := []string{fmt.Sprintf(
		"stream   queue %s %3.0f  tracked %.0f  pending %.0f  advances %.0f  cache-hit %s  invalidations %.0f%s",
		sparkline(queueSeries, 12), last(queueSeries),
		last(h.Series[obs.GaugeStreamTracked]),
		last(h.Series[obs.GaugeStreamPending]),
		advances, hitRate,
		last(h.Series[obs.CtrStreamInvalidations]), shedNote)}
	if st, ok := h.Stages[obs.StageBinToVerdict]; ok && len(st.Count) > 0 && st.Count[len(st.Count)-1] > 0 {
		p99s := make([]float64, len(st.P99us))
		for i, v := range st.P99us {
			p99s[i] = float64(v)
		}
		n := len(st.Count) - 1
		lines = append(lines, fmt.Sprintf("         b2v p99 %s %s  verdicts %d",
			sparkline(p99s, 30), formatMicros(st.P99us[n]), st.Count[n]))
	}
	return lines
}

// diskHealthLine renders the disk-health panel body, or "" when the
// collector exposes no persistence telemetry (in-memory store with no
// quarantines).
func diskHealthLine(h *obs.HistoryDump) string {
	stateSeries, persistent := h.Series["monitor.persist_state"]
	quarantined := last(h.Series["monitor.quarantined_chunks"])
	if !persistent && quarantined == 0 {
		return ""
	}
	state := "HEALTHY"
	switch last(stateSeries) {
	case 1:
		state = "DEGRADED (re-arm pending)"
	case 2:
		state = "FAILED (memory-only)"
	}
	line := state
	if errs := last(h.Series["monitor.disk_errors"]); errs > 0 {
		line += fmt.Sprintf("  errors %.0f  re-arms %.0f", errs, last(h.Series["monitor.wal_rearms"]))
	}
	if quarantined > 0 {
		line += fmt.Sprintf("  QUARANTINED CHUNKS %.0f  degraded reads %.0f",
			quarantined, last(h.Series["monitor.degraded_reads"]))
	}
	return line
}
