// Benchmark harness backing the paper's quantitative claims. Table and
// figure numbers refer to the CoNEXT'15 paper; EXPERIMENTS.md maps each
// to measured values.
//
//	Table 2 (per-window computational cost)  → BenchmarkPerWindow/*
//	Table 1 / Fig. 5 (accuracy & delay)      → cmd/funnelbench (full
//	  corpus; BenchmarkEvaluateScenario exercises the same path at
//	  reduced scale so regressions surface in `go test -bench`)
//	Fig. 6 / Fig. 7 (case studies)           → BenchmarkAssessRedisCase,
//	  BenchmarkAssessAdCase
//	Design ablations (DESIGN.md)             → BenchmarkAblation/*
package funnel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/detect"
	"repro/internal/eval"
	"repro/internal/funnel"
	"repro/internal/linalg"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/sst"
	"repro/internal/topo"
	"repro/internal/workload"
)

// benchSeries builds a mixed series with a level shift for per-window
// scoring benchmarks.
func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 10*math.Sin(2*math.Pi*float64(i)/240) + rng.NormFloat64()
		if i >= n/2 {
			x[i] += 8
		}
	}
	return x
}

// BenchmarkPerWindow measures the per-sliding-window cost of every
// method — the quantity of Table 2 (FUNNEL 401.8 µs, CUSUM 1.846 ms,
// MRLS 2.852 s on the paper's hardware; the *ordering and ratios* are
// the reproduction target).
func BenchmarkPerWindow(b *testing.B) {
	x := benchSeries(400)
	cases := []struct {
		name   string
		scorer sst.Scorer
	}{
		{"FUNNEL-IKA", sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true})},
		{"RobustSST-fullSVD", sst.NewRobust(sst.Config{Normalize: true, RobustFilter: true})},
		{"ClassicSST", sst.NewClassic(sst.Config{Normalize: true})},
		{"CUSUM", baselines.NewCUSUM()},
		{"MRLS", baselines.NewMRLS()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := c.scorer.Config()
			t0 := cfg.PastSpan()
			span := len(x) - cfg.FutureSpan() - t0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.scorer.ScoreAt(x, t0+i%span)
			}
		})
	}
}

// BenchmarkPerWindowFUNNEL guards the telemetry overhead on the Table-2
// hot path: the deployed IKA scorer raw (collector-nil, what
// uninstrumented library users run) versus wrapped by InstrumentScorer
// with a live collector. The instrumented path adds two clock reads and
// one lock-free histogram update per window; the acceptance bar is <5%
// overhead, which `go test -bench PerWindowFUNNEL` makes directly
// comparable in one output.
func BenchmarkPerWindowFUNNEL(b *testing.B) {
	x := benchSeries(400)
	cases := []struct {
		name string
		col  *obs.Collector
	}{
		{"collector-nil", nil},
		{"collector-on", obs.NewCollector()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			scorer := funnel.InstrumentScorer(sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true}), c.col)
			cfg := scorer.Config()
			t0 := cfg.PastSpan()
			span := len(x) - cfg.FutureSpan() - t0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scorer.ScoreAt(x, t0+i%span)
			}
		})
	}
}

// BenchmarkLinalgKernels isolates the §3.2.3 speedup: a full Jacobi SVD
// of the 9×9 past Hankel matrix versus the Lanczos(k=5)+QL path that
// IKA substitutes for it.
func BenchmarkLinalgKernels(b *testing.B) {
	x := benchSeries(64)
	hank := linalg.Hankel(x, 34, 9, 9)
	start := make([]float64, 9)
	for i := range start {
		start[i] = 1 + float64(i)
	}
	b.Run("SVD-9x9", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.SVD(hank)
		}
	})
	b.Run("Lanczos5-QL", func(b *testing.B) {
		b.ReportAllocs()
		op := linalg.GramOp(hank)
		for i := 0; i < b.N; i++ {
			res, err := linalg.Lanczos(op, start, 5, false)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := linalg.TridiagEig(res.Alpha, res.Beta); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchScenario caches a small corpus across benchmarks.
var benchScenarioCache *workload.Scenario

func benchScenario(b *testing.B) *workload.Scenario {
	b.Helper()
	if benchScenarioCache == nil {
		p := workload.DefaultParams()
		p.Changes = 4
		p.HistoryDays = 2
		sc, err := workload.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		benchScenarioCache = sc
	}
	return benchScenarioCache
}

// BenchmarkAssessChange measures one full pipeline run for a single
// software change (impact set → detection → DiD) — the unit of work
// FUNNEL performs tens of thousands of times per day (§2.3).
func BenchmarkAssessChange(b *testing.B) {
	sc := benchScenario(b)
	a, err := funnel.NewAssessor(sc.Source, sc.Topo, funnel.Config{
		ServerMetrics:   workload.ServerMetrics(),
		InstanceMetrics: workload.InstanceMetrics(),
		HistoryDays:     2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assess(sc.Cases[i%len(sc.Cases)].Change); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateScenario runs the Table-1 evaluation path at reduced
// scale (FUNNEL only) so accuracy-harness regressions appear in
// standard benchmarks; cmd/funnelbench regenerates the full table.
func BenchmarkEvaluateScenario(b *testing.B) {
	sc := benchScenario(b)
	m := &eval.FunnelMethod{Label: "FUNNEL", Config: funnel.Config{HistoryDays: 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Run(sc, []eval.Method{m}, eval.Options{NegativeWeight: 86}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssessRedisCase regenerates the Fig. 6 assessment.
func BenchmarkAssessRedisCase(b *testing.B) {
	p := workload.DefaultRedisParams()
	p.UnaffectedPerClassAB = 20
	rc, err := workload.GenerateRedis(p)
	if err != nil {
		b.Fatal(err)
	}
	a, err := funnel.NewAssessor(rc.Source, rc.Topo, funnel.Config{
		ServerMetrics: []string{workload.MetricNIC},
		HistoryDays:   p.HistoryDays,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assess(rc.Change); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssessAdCase regenerates the Fig. 7 assessment.
func BenchmarkAssessAdCase(b *testing.B) {
	ac, err := workload.GenerateAdClicks(workload.DefaultAdParams())
	if err != nil {
		b.Fatal(err)
	}
	a, err := funnel.NewAssessor(ac.Source, ac.Topo, funnel.Config{
		InstanceMetrics: []string{workload.MetricEffectiveClicks},
		HistoryDays:     5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assess(ac.Change); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation compares the design choices DESIGN.md calls out:
// the robustness filter, the future-eigen selection, and the
// normalization anchor.
func BenchmarkAblation(b *testing.B) {
	x := benchSeries(400)
	variants := []struct {
		name string
		cfg  sst.Config
	}{
		{"deployed", sst.Config{Normalize: true, RobustFilter: true}},
		{"no-filter", sst.Config{Normalize: true}},
		{"no-normalize", sst.Config{RobustFilter: true}},
		{"future-smallest", sst.Config{Normalize: true, RobustFilter: true, FutureSmallest: true}},
		{"omega5-fast", sst.Config{Omega: 5, Normalize: true, RobustFilter: true}},
		{"omega15-precise", sst.Config{Omega: 15, Normalize: true, RobustFilter: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			s := sst.NewIKA(v.cfg)
			cfg := s.Config()
			t0 := cfg.PastSpan()
			span := len(x) - cfg.FutureSpan() - t0
			for i := 0; i < b.N; i++ {
				s.ScoreAt(x, t0+i%span)
			}
		})
	}
}

// BenchmarkDiDEstimate measures the determination stage in isolation.
func BenchmarkDiDEstimate(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mk := func(level float64) []float64 {
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = level + rng.NormFloat64()
		}
		return xs
	}
	tp, tq, cp, cq := mk(10), mk(14), mk(10), mk(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		np, nq, ncp, ncq := NormalizeDiDGroups(tp, tq, cp, cq)
		if _, err := EstimateDiD(np, nq, ncp, ncq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImpactSet measures §3.1's impact-set identification.
func BenchmarkImpactSet(b *testing.B) {
	tp := topo.NewTopology()
	servers := make([]string, 64)
	for i := range servers {
		servers[i] = "srv-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		tp.Deploy("svc.core", servers[i])
	}
	tp.Relate("svc.core", "svc.feed")
	tp.Relate("svc.feed", "svc.store")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.IdentifyImpactSet("svc.core", servers[:16]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorIngest measures the KPI store's append path — the
// rate at which the substrate absorbs the multi-million-KPI-per-minute
// stream of §2.2.
func BenchmarkMonitorIngest(b *testing.B) {
	start := time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC)
	store := monitor.NewStore(start, time.Minute)
	key := topo.KPIKey{Scope: topo.ScopeServer, Entity: "srv-1", Metric: "cpu"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Append(monitor.Measurement{Key: key, T: start.Add(time.Duration(i) * time.Minute), V: float64(i)})
	}
}

// BenchmarkWireEncode measures the subscription protocol's measurement
// framing.
func BenchmarkWireEncode(b *testing.B) {
	m := monitor.Measurement{
		Key: topo.KPIKey{Scope: topo.ScopeInstance, Entity: "search.web@srv-42", Metric: "pv.count"},
		T:   time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC),
		V:   3.14,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload, err := monitor.EncodeMeasurement(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := monitor.DecodeMeasurement(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetPush measures the per-sample cost of the online fleet —
// multiply by ~2.2M KPIs (Table 3) for the deployment's steady-state
// per-minute budget.
func BenchmarkFleetPush(b *testing.B) {
	fleet := detect.NewFleet(nil)
	rng := rand.New(rand.NewSource(9))
	const keys = 64
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = 50 + rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := topo.KPIKey{Scope: topo.ScopeServer, Entity: benchEntity(i % keys), Metric: "m"}
		fleet.Push(key, vals[i%len(vals)])
	}
}

// benchEntity formats a small entity name without fmt in the hot loop.
func benchEntity(i int) string {
	return "srv-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// BenchmarkScoreSeriesParallel measures the history-backfill path.
// On multi-core hosts the worker fan-out scales near-linearly; the
// recorded bench_output.txt comes from a single-core container, where
// the goroutine overhead shows instead.
func BenchmarkScoreSeriesParallel(b *testing.B) {
	x := benchSeries(2048)
	s := sst.NewIKA(sst.Config{Normalize: true, RobustFilter: true})
	for _, workers := range []int{1, 4, 0} {
		name := "workers-auto"
		if workers > 0 {
			name = "workers-" + string(rune('0'+workers))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sst.ScoreSeriesParallel(s, x, workers)
			}
		})
	}
}
