package funnel_test

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	funnel "repro"
)

// ExampleNewIKASST scores a KPI series with the deployed scorer and
// prints where the change evidence peaks.
func ExampleNewIKASST() {
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 200)
	for i := range series {
		series[i] = 40 + 0.5*rng.NormFloat64()
		if i >= 100 {
			series[i] += 10
		}
	}
	scorer := funnel.NewIKASST(funnel.SSTConfig{Normalize: true, RobustFilter: true})
	scores := funnel.ScoreSeries(scorer, series)
	best, bestAt := 0.0, 0
	for i, v := range scores {
		if !math.IsNaN(v) && v > best {
			best, bestAt = v, i
		}
	}
	// The scorer peaks where its future window first straddles the
	// change, slightly before the change bin itself.
	fmt.Printf("peak within the straddle window: %v\n", bestAt >= 90 && bestAt <= 110)
	// Output:
	// peak within the straddle window: true
}

// ExampleNewDetector applies the 7-minute persistence rule.
func ExampleNewDetector() {
	rng := rand.New(rand.NewSource(2))
	series := make([]float64, 300)
	for i := range series {
		series[i] = 70 + 0.4*rng.NormFloat64()
		if i >= 150 {
			series[i] -= 12
		}
	}
	scorer := funnel.NewIKASST(funnel.SSTConfig{Normalize: true, RobustFilter: true})
	detector := funnel.NewDetector(scorer, 1.6)
	for _, d := range detector.Detect(series) {
		fmt.Println(d.Kind)
	}
	// Output:
	// level-shift-down
}

// ExampleEstimateDiD shows the difference-in-differences decision on
// pooled group samples.
func ExampleEstimateDiD() {
	treatedPre := []float64{10, 11, 10, 9, 10}
	treatedPost := []float64{16, 15, 17, 16, 16}
	controlPre := []float64{30, 31, 30, 29, 30}
	controlPost := []float64{31, 30, 31, 30, 31}
	res, err := funnel.EstimateDiD(treatedPre, treatedPost, controlPre, controlPost)
	if err != nil {
		panic(err)
	}
	fmt.Printf("α = %.1f, causal at 1.0: %v\n", res.Alpha, res.Causal(1.0))
	// Output:
	// α = 5.4, causal at 1.0: true
}

// ExampleNewTopology derives an impact set the way §3.1 does.
func ExampleNewTopology() {
	tp := funnel.NewTopology()
	for _, srv := range []string{"s1", "s2", "s3", "s4"} {
		tp.Deploy("shop.cart", srv)
	}
	set, err := tp.IdentifyImpactSet("shop.cart", []string{"s1"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("dark=%v treated=%v control=%v\n", set.Dark(), set.TServers, set.CServers)
	// Output:
	// dark=true treated=[s1] control=[s2 s3 s4]
}

// ExampleNewStore shows the monitoring substrate's binning.
func ExampleNewStore() {
	start := time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC)
	store := funnel.NewStore(start, time.Minute)
	key := funnel.KPIKey{Scope: funnel.ScopeServer, Entity: "s1", Metric: "mem.util"}
	store.Append(funnel.Measurement{Key: key, T: start, V: 55})
	store.Append(funnel.Measurement{Key: key, T: start.Add(2 * time.Minute), V: 57})
	s, _ := store.Series(key)
	fmt.Printf("%d bins, gap at 1: %v\n", s.Len(), s.HasGaps())
	// Output:
	// 3 bins, gap at 1: true
}
